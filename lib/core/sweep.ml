(* Domain-based worker pool for experiment grids; see sweep.mli.

   Determinism contract: results are stored by job index and returned in
   submission order, and the first-raising job (by index, not by wall
   clock) decides which exception escapes.  Nothing observable depends on
   the interleaving of workers.

   The supervised variants ([map_supervised]/[map_pool_supervised]) keep
   the same contract for every cell that completes: retries are
   per-index, quarantine decisions depend only on the job's own
   behaviour, and the slot list comes back in submission order.  Only the
   opt-in wall-clock watchdog is allowed to be nondeterministic, and it
   is off by default. *)

let max_domains = 64

let default_domains () =
  let requested =
    match Sys.getenv_opt "UHM_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n > 0 -> n
        | _ -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  max 1 (min max_domains requested)

(* One batch in flight at a time.  [batch] is the current jobs as an
   index-consuming closure (the result slots are captured inside it), so
   the pool itself is monomorphic.  [generation] stamps each batch:
   a worker abandoned by the watchdog may surface long after its batch
   returned, and must not corrupt the accounting of a later batch. *)
type pool = {
  mutable total_domains : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* a batch was submitted, or shutdown *)
  work_done : Condition.t;   (* the last job of the batch completed *)
  mutable batch : (int -> unit) option;
  mutable total : int;       (* jobs in the current batch *)
  mutable next : int;        (* cursor: next unclaimed job index *)
  mutable completed : int;   (* jobs fully accounted for *)
  mutable generation : int;  (* batch stamp, bumped per submission *)
  mutable abandoned : int;   (* workers written off by the watchdog *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

(* Ambient in-job marker: the pools whose jobs are live on this domain's
   stack.  Lets a re-entrant [map_pool] on the same pool fail fast with
   [Invalid_argument] instead of deadlocking on the completion barrier. *)
let in_jobs_key : pool list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let check_reentry pool name =
  if List.memq pool !(Domain.DLS.get in_jobs_key) then
    invalid_arg
      (name ^ ": re-entered from inside one of this pool's own jobs \
              (nested sweeps must use a fresh pool, e.g. Sweep.map)")

let in_job pool th =
  let stack = Domain.DLS.get in_jobs_key in
  stack := pool :: !stack;
  Fun.protect
    ~finally:(fun () ->
      match !stack with
      | p :: rest when p == pool -> stack := rest
      | _ -> stack := List.filter (fun p -> p != pool) !stack)
    th

(* Claim-and-run loop shared by workers and the submitting domain.  Called
   with the mutex held; returns with the mutex held once the cursor is
   exhausted (workers then sleep; the submitter waits for completion).
   Completion accounting lives inside the job closures themselves so that
   a watchdog can complete a cell on the submitter side while the worker
   is still stuck in it. *)
let drain pool =
  while
    match pool.batch with
    | Some job when pool.next < pool.total ->
        let i = pool.next in
        pool.next <- i + 1;
        Mutex.unlock pool.mutex;
        (* [job] never raises: the map wrappers catch everything *)
        job i;
        Mutex.lock pool.mutex;
        true
    | _ -> false
  do
    ()
  done

let worker_main pool =
  Mutex.lock pool.mutex;
  while not pool.stopping do
    drain pool;
    if not pool.stopping then Condition.wait pool.work_ready pool.mutex
  done;
  Mutex.unlock pool.mutex

let create ?domains () =
  let wanted =
    match domains with
    | Some d -> max 1 (min max_domains d)
    | None -> default_domains ()
  in
  let pool =
    {
      total_domains = wanted;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      total = 0;
      next = 0;
      completed = 0;
      generation = 0;
      abandoned = 0;
      stopping = false;
      workers = [];
    }
  in
  (* If the runtime cannot give us more domains (resource limits,
     already at Domain's internal cap, ...) we degrade to however many
     we managed to spawn — possibly none, i.e. serial execution — and
     say so, rather than aborting the campaign. *)
  let spawned = ref [] in
  (try
     for _ = 2 to wanted do
       spawned := Domain.spawn (fun () -> worker_main pool) :: !spawned
     done
   with e ->
     Printf.eprintf
       "uhm sweep: warning: Domain.spawn failed (%s); degrading to %d \
        domain(s)\n%!"
       (Printexc.to_string e)
       (List.length !spawned + 1));
  pool.workers <- !spawned;
  pool.total_domains <- List.length !spawned + 1;
  pool

let domains pool = pool.total_domains

let abandoned pool =
  Mutex.lock pool.mutex;
  let n = pool.abandoned in
  Mutex.unlock pool.mutex;
  n

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work_ready;
  let abandoned = pool.abandoned in
  Mutex.unlock pool.mutex;
  if abandoned = 0 then List.iter Domain.join pool.workers
  else
    (* Some worker may still be wedged inside a quarantined job; joining
       it would block forever.  The domains will exit on their own if the
       job ever returns; until then they leak, which we log. *)
    Printf.eprintf
      "uhm sweep: warning: %d worker(s) abandoned by the watchdog; \
       skipping join (domains may leak)\n%!"
      abandoned;
  pool.workers <- []

(* Cost-aware claim order: with a cost hint the cursor walks a stable
   descending-cost permutation of the job indices, so the long-tail jobs
   of a grid start first and the sweep doesn't end on a lone slow worker.
   Results are still stored by original index, so everything observable —
   result order, first-error-by-index — is unchanged by the hint. *)
let claim_order ~cost jobs =
  let n = Array.length jobs in
  match cost with
  | None -> Array.init n Fun.id
  | Some cost ->
      let costs = Array.map cost jobs in
      let order = Array.init n Fun.id in
      (* stable, so equal-cost jobs keep submission order *)
      let a = Array.to_list order in
      let sorted =
        List.stable_sort (fun i j -> compare costs.(j) costs.(i)) a
      in
      Array.of_list sorted

(* Submit a batch of [n] claims to the pool and wait for completion.
   [mk gen] is the job closure for this batch; it must never raise and
   must account its own completions (guarded by [gen]).  [poll], when
   given, replaces the idle completion wait with a periodic [check gen]
   callback run under the pool mutex — the watchdog hook. *)
let run_batch ?poll pool n mk =
  Mutex.lock pool.mutex;
  if pool.batch <> None then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Sweep: a sweep is already in flight on this pool"
  end;
  pool.generation <- pool.generation + 1;
  let gen = pool.generation in
  pool.total <- n;
  pool.next <- 0;
  pool.completed <- 0;
  pool.batch <- Some (mk gen);
  Condition.broadcast pool.work_ready;
  (match poll with
  | None ->
      (* the submitting domain pulls jobs too *)
      drain pool;
      while pool.completed < pool.total do
        Condition.wait pool.work_done pool.mutex
      done
  | Some (interval, check) ->
      (* With a watchdog the submitter must NOT run jobs: were it to
         claim the wedged one it would be stuck inside it, and nobody
         would be left to poll.  It dedicates itself to the check loop;
         the workers own the whole batch. *)
      while pool.completed < pool.total do
        Mutex.unlock pool.mutex;
        Unix.sleepf interval;
        Mutex.lock pool.mutex;
        if pool.completed < pool.total then check gen
      done);
  pool.batch <- None;
  Mutex.unlock pool.mutex

(* Count one completion for batch [gen].  Caller holds the mutex. *)
let finish_one pool gen =
  if pool.generation = gen then begin
    pool.completed <- pool.completed + 1;
    if pool.completed = pool.total then Condition.broadcast pool.work_done
  end

let map_pool ?cost pool f jobs =
  check_reentry pool "Sweep.map_pool";
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  if n = 0 then []
  else begin
    let results =
      Array.make n (Error (Failure "Sweep.map_pool: job not evaluated"))
    in
    let order = claim_order ~cost jobs in
    if pool.workers = [] then
      for k = 0 to n - 1 do
        let i = order.(k) in
        results.(i) <-
          (try Ok (in_job pool (fun () -> f jobs.(i))) with e -> Error e)
      done
    else begin
      let mk gen k =
        let i = order.(k) in
        let r =
          try Ok (in_job pool (fun () -> f jobs.(i))) with e -> Error e
        in
        Mutex.lock pool.mutex;
        if pool.generation = gen then results.(i) <- r;
        finish_one pool gen;
        Mutex.unlock pool.mutex
      in
      run_batch pool n mk
    end;
    (* first error in submission order wins, explicitly, so the escaping
       exception does not depend on evaluation-order quirks *)
    Array.iter (function Error e -> raise e | Ok _ -> ()) results;
    Array.to_list
      (Array.map (function Ok v -> v | Error _ -> assert false) results)
  end

let map ?cost ?domains f jobs =
  let wanted =
    match domains with
    | Some d -> max 1 (min max_domains d)
    | None -> default_domains ()
  in
  (* no point spawning more domains than jobs *)
  let wanted = min wanted (max 1 (List.length jobs)) in
  if wanted = 1 && cost = None then List.map f jobs
  else if wanted = 1 then
    (* inline, but honouring the claim order so the hint is observable
       (and testable) without spawning domains; results stay in
       submission order via the same by-index slots *)
    map_pool ?cost (create ~domains:1 ()) f jobs
  else begin
    let pool = create ~domains:wanted () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () ->
        map_pool ?cost pool f jobs)
  end

(* -- Supervision ------------------------------------------------------------ *)

type quarantine = { q_index : int; q_attempts : int; q_reason : string }
type 'b slot = Completed of 'b | Quarantined of quarantine

type supervision = {
  sv_attempts : int;
  sv_backoff : float;
  sv_wall_limit : float option;
  sv_poll : float;
}

let default_supervision =
  { sv_attempts = 3; sv_backoff = 0.005; sv_wall_limit = None; sv_poll = 0.01 }

let wall_reason limit =
  Printf.sprintf "wall-clock watchdog: job exceeded %.3fs" limit

let map_pool_supervised ?cost ?(supervision = default_supervision) ?cached
    ?cell_hook pool f jobs =
  check_reentry pool "Sweep.map_pool_supervised";
  if supervision.sv_attempts < 1 then
    invalid_arg "Sweep.map_pool_supervised: sv_attempts must be >= 1";
  if supervision.sv_poll <= 0. then
    invalid_arg "Sweep.map_pool_supervised: sv_poll must be > 0";
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  if n = 0 then []
  else begin
    let slots : 'b slot option array = Array.make n None in
    let attempts_started = Array.make n 0 in
    let started = Array.make n nan in   (* claim time; nan = unclaimed *)
    let finished = Array.make n false in
    let serial = pool.workers = [] in
    let order = claim_order ~cost jobs in
    let fire_hook index attempts slot =
      match cell_hook with
      | Some h -> h ~index ~attempts slot
      | None -> ()
    in
    (* A hook that raises (e.g. the journal hitting a full disk) must not
       kill a worker domain: the batch's completion count would stay
       short and the submitter would block on [work_done] forever.  Stash
       the failure, always reach [finish_one], and rethrow once every
       cell is accounted for — first failing index wins, mirroring the
       first-error-by-index contract of [map_pool]. *)
    let hook_error = ref None in
    let fire_hook_safe index attempts slot =
      try fire_hook index attempts slot
      with e ->
        Mutex.lock pool.mutex;
        (match !hook_error with
        | Some (j, _) when j <= index -> ()
        | _ -> hook_error := Some (index, e));
        Mutex.unlock pool.mutex
    in
    (* hooks for watchdog quarantines fire after the batch drains (the
       submitter discovers them under the pool mutex) *)
    let deferred_hooks = ref [] in
    let lookup_cached i =
      match cached with Some c -> c i | None -> None
    in
    (* The retry loop: run [f], catching everything; back off and retry a
       bounded number of times; then give up and quarantine.  Attempt
       counts are published eagerly so a watchdog quarantine can report
       how far the cell got. *)
    let attempt_job i =
      let note_attempt k =
        if serial then attempts_started.(i) <- k
        else begin
          Mutex.lock pool.mutex;
          attempts_started.(i) <- k;
          Mutex.unlock pool.mutex
        end
      in
      let rec go k =
        note_attempt (k + 1);
        match f jobs.(i) with
        | v -> (Completed v, k + 1)
        | exception e ->
            let k = k + 1 in
            if k >= supervision.sv_attempts then
              ( Quarantined
                  { q_index = i; q_attempts = k;
                    q_reason = Printexc.to_string e },
                k )
            else begin
              Unix.sleepf (supervision.sv_backoff *. float_of_int (1 lsl (k - 1)));
              go k
            end
      in
      go 0
    in
    let run_cell i =
      (* cached cells complete instantly, without running [f] or firing
         the hook (they are already journaled) *)
      match lookup_cached i with
      | Some v -> (Completed v, 0, false)
      | None ->
          let slot, att = in_job pool (fun () -> attempt_job i) in
          (slot, att, true)
    in
    if serial then
      for k = 0 to n - 1 do
        let i = order.(k) in
        started.(i) <- Unix.gettimeofday ();
        let slot, att, fresh = run_cell i in
        (* serial watchdog is necessarily post-hoc: the only domain was
           busy running the job *)
        let slot =
          match (supervision.sv_wall_limit, slot) with
          | Some limit, Completed _
            when fresh && Unix.gettimeofday () -. started.(i) > limit ->
              Quarantined
                { q_index = i; q_attempts = att;
                  q_reason = wall_reason limit }
          | _ -> slot
        in
        slots.(i) <- Some slot;
        finished.(i) <- true;
        if fresh then fire_hook_safe i att slot
      done
    else begin
      let mk gen k =
        let i = order.(k) in
        Mutex.lock pool.mutex;
        started.(i) <- Unix.gettimeofday ();
        Mutex.unlock pool.mutex;
        let slot, att, fresh = run_cell i in
        Mutex.lock pool.mutex;
        if pool.generation = gen && not finished.(i) then begin
          finished.(i) <- true;
          slots.(i) <- Some slot;
          Mutex.unlock pool.mutex;
          (* the hook may fsync a journal record — keep it off the pool
             mutex, but complete the cell only after it returns so the
             sweep never finishes before its journal is durable; a
             raising hook is stashed so [finish_one] is reached anyway *)
          if fresh then fire_hook_safe i att slot;
          Mutex.lock pool.mutex;
          finish_one pool gen;
          Mutex.unlock pool.mutex
        end
        else begin
          (* the watchdog already quarantined this cell (or the batch is
             long gone): discard the late result.  Either way the
             watchdog wrote this worker off as wedged when it quarantined
             the cell, and the worker has now come back — put it back on
             the books so shutdown joins it instead of leaking it. *)
          pool.abandoned <- pool.abandoned - 1;
          Mutex.unlock pool.mutex
        end
      in
      let poll =
        match supervision.sv_wall_limit with
        | None -> None
        | Some limit ->
            let check gen =
              (* under the pool mutex *)
              let now = Unix.gettimeofday () in
              for i = 0 to n - 1 do
                if
                  (not finished.(i))
                  && (not (Float.is_nan started.(i)))
                  && now -. started.(i) > limit
                then begin
                  finished.(i) <- true;
                  let q =
                    Quarantined
                      { q_index = i;
                        q_attempts = max 1 attempts_started.(i);
                        q_reason = wall_reason limit }
                  in
                  slots.(i) <- Some q;
                  pool.abandoned <- pool.abandoned + 1;
                  deferred_hooks :=
                    (i, max 1 attempts_started.(i), q) :: !deferred_hooks;
                  finish_one pool gen
                end
              done
            in
            Some (supervision.sv_poll, check)
      in
      run_batch ?poll pool n mk;
      List.iter
        (fun (i, att, slot) -> fire_hook_safe i att slot)
        (List.rev !deferred_hooks)
    end;
    (* a hook failure means the journal (or whatever the hook maintains)
       is no longer trustworthy: surface it instead of returning slots
       that were never durably recorded *)
    (match !hook_error with Some (_, e) -> raise e | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some s -> s
           | None -> assert false (* every cell finished or quarantined *))
         slots)
  end

let map_supervised ?cost ?supervision ?cached ?cell_hook ?domains f jobs =
  let wanted =
    match domains with
    | Some d -> max 1 (min max_domains d)
    | None -> default_domains ()
  in
  let wanted = min wanted (max 1 (List.length jobs)) in
  let pool = create ~domains:wanted () in
  Fun.protect
    ~finally:(fun () -> shutdown pool)
    (fun () ->
      map_pool_supervised ?cost ?supervision ?cached ?cell_hook pool f jobs)
