(* Host-side throughput measurement of the simulator itself.

   Where the rest of uhm_core measures *simulated* cycles, this module
   measures how fast the host machine chews through them: wall-clock time
   per run, simulated cycles per second, and host instructions per second
   for the representative workloads under each execution strategy.  The
   results feed BENCH_simulator.json so the repo carries a perf trajectory
   across PRs. *)

module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Suite = Uhm_workload.Suite

type sample = {
  workload : string;
  strategy : string;
  encoding : string;
  runs : int;
  wall_seconds : float;        (* total over all runs *)
  sim_cycles : int;            (* per run (deterministic) *)
  host_instrs : int;           (* per run *)
  short_instrs : int;          (* per run *)
  dir_steps : int;             (* per run *)
  sim_cycles_per_sec : float;
  host_instrs_per_sec : float;
  wall_us_per_run : float;
}

(* The paper's three machine organisations plus the fully-bound DER corner. *)
let strategies =
  [
    ("interp", Uhm.Interp);
    ("cached", Uhm.Cached 4096);
    ("dtb", Uhm.Dtb_strategy Dtb.paper_config);
    ("der", Uhm.Der Uhm.Der_level1);
  ]

(* One loop-dominated, one call-dominated, one low-locality program: the
   same representatives the bench tables use. *)
let default_workloads = [ "fact_iter"; "fib_rec"; "flat_straightline" ]

let kind = Kind.Huffman

let measure ?(min_runs = 5) ?(min_seconds = 0.2) ~workload
    ~strategy_name ~strategy () =
  (* at least one timed run, so the rates are always finite *)
  let min_runs = max 1 min_runs in
  let p = Suite.compile (Suite.find workload) in
  let encoded = Codec.encode kind p in
  let run () =
    match strategy with
    | Uhm.Psder_static | Uhm.Der _ -> Uhm.run ~strategy ~kind p
    | _ -> Uhm.run_encoded ~strategy encoded
  in
  (* one warm-up run, also the source of the per-run counters *)
  let r = run () in
  let stats = r.Uhm.machine_stats in
  let runs = ref 0 in
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  while !runs < min_runs || elapsed () < min_seconds do
    ignore (Sys.opaque_identity (run ()));
    incr runs
  done;
  let wall = elapsed () in
  let per_sec count =
    float_of_int (count * !runs) /. (if wall > 0. then wall else epsilon_float)
  in
  {
    workload;
    strategy = strategy_name;
    encoding = Kind.name kind;
    runs = !runs;
    wall_seconds = wall;
    sim_cycles = r.Uhm.cycles;
    host_instrs = stats.Uhm_machine.Machine.host_instrs;
    short_instrs = stats.Uhm_machine.Machine.short_instrs;
    dir_steps = r.Uhm.dir_steps;
    sim_cycles_per_sec = per_sec r.Uhm.cycles;
    host_instrs_per_sec = per_sec stats.Uhm_machine.Machine.host_instrs;
    wall_us_per_run = 1e6 *. wall /. float_of_int !runs;
  }

let run_suite ?(workloads = default_workloads) ?min_runs ?min_seconds () =
  List.concat_map
    (fun workload ->
      List.map
        (fun (strategy_name, strategy) ->
          measure ?min_runs ?min_seconds ~workload ~strategy_name ~strategy ())
        strategies)
    workloads

(* -- JSON ------------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let sample_to_json s =
  Printf.sprintf
    "    {\n\
    \      \"workload\": \"%s\",\n\
    \      \"strategy\": \"%s\",\n\
    \      \"encoding\": \"%s\",\n\
    \      \"runs\": %d,\n\
    \      \"wall_seconds\": %.6f,\n\
    \      \"wall_us_per_run\": %.2f,\n\
    \      \"sim_cycles\": %d,\n\
    \      \"host_instrs\": %d,\n\
    \      \"short_instrs\": %d,\n\
    \      \"dir_steps\": %d,\n\
    \      \"sim_cycles_per_sec\": %.1f,\n\
    \      \"host_instrs_per_sec\": %.1f\n\
    \    }"
    (json_escape s.workload) (json_escape s.strategy) (json_escape s.encoding)
    s.runs s.wall_seconds s.wall_us_per_run s.sim_cycles s.host_instrs
    s.short_instrs s.dir_steps s.sim_cycles_per_sec s.host_instrs_per_sec

let to_json samples =
  Printf.sprintf
    "{\n\
    \  \"schema\": \"uhm-bench-simulator/1\",\n\
    \  \"generated_by\": \"bench/main.exe perf\",\n\
    \  \"unix_time\": %.0f,\n\
    \  \"samples\": [\n%s\n  ]\n}\n"
    (Unix.time ())
    (String.concat ",\n" (List.map sample_to_json samples))

let write_json ~path samples =
  let oc = open_out path in
  output_string oc (to_json samples);
  close_out oc
