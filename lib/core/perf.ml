(* Host-side throughput measurement of the simulator itself.

   Where the rest of uhm_core measures *simulated* cycles, this module
   measures how fast the host machine chews through them: wall-clock time
   per run, simulated cycles per second, and host instructions per second
   for the representative workloads under each execution strategy.  The
   results feed BENCH_simulator.json so the repo carries a perf trajectory
   across PRs. *)

module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module Suite = Uhm_workload.Suite

type sample = {
  workload : string;
  strategy : string;
  backend : string;            (* "decode" | "threaded" *)
  encoding : string;
  runs : int;
  wall_seconds : float;        (* total over all runs *)
  sim_cycles : int;            (* per run (deterministic) *)
  host_instrs : int;           (* per run *)
  short_instrs : int;          (* per run *)
  dir_steps : int;             (* per run *)
  sim_cycles_per_sec : float;
  host_instrs_per_sec : float;
  wall_us_per_run : float;
}

let backend_name = function `Decode -> "decode" | `Threaded -> "threaded"

(* The paper's three machine organisations plus the fully-bound DER corner. *)
let strategies =
  [
    ("interp", Uhm.Interp);
    ("cached", Uhm.Cached 4096);
    ("dtb", Uhm.Dtb_strategy Dtb.paper_config);
    ("der", Uhm.Der Uhm.Der_level1);
  ]

(* One loop-dominated, one call-dominated, one low-locality program: the
   same representatives the bench tables use. *)
let default_workloads = [ "fact_iter"; "fib_rec"; "flat_straightline" ]

let kind = Kind.Huffman

let measure ?(min_runs = 5) ?(min_seconds = 0.2) ?(backend = `Decode)
    ~workload ~strategy_name ~strategy () =
  (* at least one timed run, so the rates are always finite *)
  let min_runs = max 1 min_runs in
  let p = Suite.compile (Suite.find workload) in
  let encoded = Codec.encode kind p in
  let run () =
    match strategy with
    | Uhm.Psder_static | Uhm.Der _ -> Uhm.run ~backend ~strategy ~kind p
    | _ -> Uhm.run_encoded ~backend ~strategy encoded
  in
  (* one warm-up run, also the source of the per-run counters *)
  let r = run () in
  let stats = r.Uhm.machine_stats in
  let runs = ref 0 in
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  while !runs < min_runs || elapsed () < min_seconds do
    ignore (Sys.opaque_identity (run ()));
    incr runs
  done;
  let wall = elapsed () in
  let per_sec count =
    float_of_int (count * !runs) /. (if wall > 0. then wall else epsilon_float)
  in
  {
    workload;
    strategy = strategy_name;
    backend = backend_name backend;
    encoding = Kind.name kind;
    runs = !runs;
    wall_seconds = wall;
    sim_cycles = r.Uhm.cycles;
    host_instrs = stats.Uhm_machine.Machine.host_instrs;
    short_instrs = stats.Uhm_machine.Machine.short_instrs;
    dir_steps = r.Uhm.dir_steps;
    sim_cycles_per_sec = per_sec r.Uhm.cycles;
    host_instrs_per_sec = per_sec stats.Uhm_machine.Machine.host_instrs;
    wall_us_per_run = 1e6 *. wall /. float_of_int !runs;
  }

let run_suite ?(workloads = default_workloads) ?min_runs ?min_seconds
    ?(backends = [ `Decode ]) ?(domains = 1) () =
  (* the sample grid goes through the sweep engine, but wall-clock
     sampling defaults to one domain: concurrent timed runs steal cycles
     from each other and would make the per-sample rates incomparable
     across commits.  Raise [domains] only to smoke-test the plumbing. *)
  let jobs =
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun (strategy_name, strategy) ->
            List.map
              (fun backend -> (workload, strategy_name, strategy, backend))
              backends)
          strategies)
      workloads
  in
  Sweep.map ~domains
    (fun (workload, strategy_name, strategy, backend) ->
      measure ?min_runs ?min_seconds ~backend ~workload ~strategy_name
        ~strategy ())
    jobs

(* -- Backend comparison (schema v3's "backend" section) ---------------------- *)

type backend_pair = {
  bp_workload : string;
  bp_strategy : string;
  bp_decode_us : float;        (* wall_us_per_run, decode backend *)
  bp_threaded_us : float;      (* wall_us_per_run, threaded backend *)
  bp_speedup : float;          (* decode / threaded host wall time *)
}

let backend_pairs samples =
  List.filter_map
    (fun s ->
      if s.backend <> "decode" then None
      else
        match
          List.find_opt
            (fun s' ->
              s'.backend = "threaded" && s'.workload = s.workload
              && s'.strategy = s.strategy)
            samples
        with
        | None -> None
        | Some s' ->
            Some
              {
                bp_workload = s.workload;
                bp_strategy = s.strategy;
                bp_decode_us = s.wall_us_per_run;
                bp_threaded_us = s'.wall_us_per_run;
                bp_speedup =
                  (if s'.wall_us_per_run > 0. then
                     s.wall_us_per_run /. s'.wall_us_per_run
                   else 0.);
              })
    samples

(* -- The parallel-sweep benchmark ------------------------------------------- *)

type sweep_bench = {
  sweep_points : int;          (* grid points in the summary sweep *)
  sweep_domains : int;         (* domain count of the parallel run *)
  sweep_wall_1 : float;        (* seconds, best of [repeats], 1 domain *)
  sweep_wall_n : float;        (* seconds, best of [repeats], N domains *)
  sweep_speedup : float;       (* wall_1 / wall_n *)
  sweep_identical : bool;      (* 1-domain and N-domain results compared equal *)
}

let measure_sweep ?domains ?(repeats = 2) () =
  let domains =
    match domains with Some d -> max 1 d | None -> Sweep.default_domains ()
  in
  let time_rows d =
    let t0 = Unix.gettimeofday () in
    let rows = Experiment.summary_rows ~domains:d () in
    (Unix.gettimeofday () -. t0, rows)
  in
  let best d =
    let rec go best_wall rows n =
      if n = 0 then (best_wall, rows)
      else
        let wall, r = time_rows d in
        go (min best_wall wall) r (n - 1)
    in
    let wall, rows = time_rows d in
    go wall rows (max 0 (repeats - 1))
  in
  let wall_1, rows_1 = best 1 in
  let wall_n, rows_n = best domains in
  {
    sweep_points = 3 * List.length rows_1;  (* three strategies per row *)
    sweep_domains = domains;
    sweep_wall_1 = wall_1;
    sweep_wall_n = wall_n;
    sweep_speedup = (if wall_n > 0. then wall_1 /. wall_n else 0.);
    sweep_identical = rows_1 = rows_n;
  }

(* -- JSON ------------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let sample_to_json s =
  Printf.sprintf
    "    {\n\
    \      \"workload\": \"%s\",\n\
    \      \"strategy\": \"%s\",\n\
    \      \"backend\": \"%s\",\n\
    \      \"encoding\": \"%s\",\n\
    \      \"runs\": %d,\n\
    \      \"wall_seconds\": %.6f,\n\
    \      \"wall_us_per_run\": %.2f,\n\
    \      \"sim_cycles\": %d,\n\
    \      \"host_instrs\": %d,\n\
    \      \"short_instrs\": %d,\n\
    \      \"dir_steps\": %d,\n\
    \      \"sim_cycles_per_sec\": %.1f,\n\
    \      \"host_instrs_per_sec\": %.1f\n\
    \    }"
    (json_escape s.workload) (json_escape s.strategy) (json_escape s.backend)
    (json_escape s.encoding) s.runs s.wall_seconds s.wall_us_per_run
    s.sim_cycles s.host_instrs s.short_instrs s.dir_steps s.sim_cycles_per_sec
    s.host_instrs_per_sec

let sweep_to_json (s : sweep_bench) =
  Printf.sprintf
    "  \"sweep\": {\n\
    \    \"points\": %d,\n\
    \    \"domains\": %d,\n\
    \    \"wall_seconds_1\": %.6f,\n\
    \    \"wall_seconds_n\": %.6f,\n\
    \    \"speedup\": %.3f,\n\
    \    \"identical\": %b\n\
    \  },\n"
    s.sweep_points s.sweep_domains s.sweep_wall_1 s.sweep_wall_n
    s.sweep_speedup s.sweep_identical

let geomean = function
  | [] -> 0.
  | xs ->
      exp
        (List.fold_left (fun a x -> a +. log x) 0. xs
        /. float_of_int (List.length xs))

(* The schema-v3 "backend" section: per-(workload, strategy) host
   wall-time speedups of the threaded backend over decode, from the
   paired samples of the same document. *)
let backend_to_json samples =
  match backend_pairs samples with
  | [] -> ""
  | pairs ->
      let pair_json p =
        Printf.sprintf
          "      {\n\
          \        \"workload\": \"%s\",\n\
          \        \"strategy\": \"%s\",\n\
          \        \"decode_us_per_run\": %.2f,\n\
          \        \"threaded_us_per_run\": %.2f,\n\
          \        \"speedup\": %.3f\n\
          \      }"
          (json_escape p.bp_workload) (json_escape p.bp_strategy)
          p.bp_decode_us p.bp_threaded_us p.bp_speedup
      in
      let speedups = List.filter_map
          (fun p -> if p.bp_speedup > 0. then Some p.bp_speedup else None)
          pairs
      in
      Printf.sprintf
        "  \"backend\": {\n\
        \    \"geomean_speedup\": %.3f,\n\
        \    \"pairs\": [\n%s\n    ]\n\
        \  },\n"
        (geomean speedups)
        (String.concat ",\n" (List.map pair_json pairs))

(* -- The open-arrival load section (schema v4) ------------------------------- *)

type load_point = {
  lp_policy : string;          (* "flush" | "tagged" | "partitioned" *)
  lp_rate : float;             (* offered load, jobs per million cycles *)
  lp_quantum : int;
  lp_jobs : int;               (* arrivals offered *)
  lp_completed : int;
  lp_shed : int;
  lp_throughput : float;       (* completions per million cycles *)
  lp_p50 : int;                (* sojourn percentiles, cycles *)
  lp_p95 : int;
  lp_p99 : int;
  lp_mean_slowdown : float;
}

type load_bench = {
  load_seed : int;
  load_slots : int;
  load_points : load_point list;
}

let load_point_to_json p =
  Printf.sprintf
    "      {\n\
    \        \"policy\": \"%s\",\n\
    \        \"rate\": %g,\n\
    \        \"quantum\": %d,\n\
    \        \"jobs\": %d,\n\
    \        \"completed\": %d,\n\
    \        \"shed\": %d,\n\
    \        \"throughput_per_mcycle\": %.3f,\n\
    \        \"sojourn_p50\": %d,\n\
    \        \"sojourn_p95\": %d,\n\
    \        \"sojourn_p99\": %d,\n\
    \        \"mean_slowdown\": %.3f\n\
    \      }"
    (json_escape p.lp_policy) p.lp_rate p.lp_quantum p.lp_jobs p.lp_completed
    p.lp_shed p.lp_throughput p.lp_p50 p.lp_p95 p.lp_p99 p.lp_mean_slowdown

let load_to_json (l : load_bench) =
  Printf.sprintf
    "  \"load\": {\n\
    \    \"seed\": %d,\n\
    \    \"slots\": %d,\n\
    \    \"points\": [\n%s\n    ]\n\
    \  },\n"
    l.load_seed l.load_slots
    (String.concat ",\n" (List.map load_point_to_json l.load_points))

(* -- The fault-tolerant serving section (schema v5) -------------------------- *)

type resilience_point = {
  rp_policy : string;          (* "flush" | "tagged" | "partitioned" *)
  rp_fault_rate : float;       (* total per-step injection probability *)
  rp_rate : float;             (* offered load, jobs per million cycles *)
  rp_quantum : int;
  rp_jobs : int;               (* arrivals offered *)
  rp_completed : int;          (* verified clean completions *)
  rp_failed : int;             (* retries exhausted *)
  rp_shed : int;
  rp_slo_attainment : float;   (* met / completed, exact *)
  rp_goodput : float;          (* in-SLO completions per million cycles *)
  rp_injected : int;
  rp_detected : int;
  rp_job_retries : int;
  rp_p99 : int;                (* sojourn p99, cycles *)
  rp_p99_degradation : float;  (* p99 / same-column fault-free p99 *)
}

type resilience_bench = {
  res_seed : int;
  res_slots : int;
  res_slo : int;               (* the deadline bound, cycles *)
  res_points : resilience_point list;
}

let resilience_point_to_json p =
  Printf.sprintf
    "      {\n\
    \        \"policy\": \"%s\",\n\
    \        \"fault_rate\": %g,\n\
    \        \"rate\": %g,\n\
    \        \"quantum\": %d,\n\
    \        \"jobs\": %d,\n\
    \        \"completed\": %d,\n\
    \        \"failed\": %d,\n\
    \        \"shed\": %d,\n\
    \        \"slo_attainment\": %.4f,\n\
    \        \"goodput_per_mcycle\": %.3f,\n\
    \        \"injected\": %d,\n\
    \        \"detected\": %d,\n\
    \        \"job_retries\": %d,\n\
    \        \"sojourn_p99\": %d,\n\
    \        \"p99_degradation\": %.3f\n\
    \      }"
    (json_escape p.rp_policy) p.rp_fault_rate p.rp_rate p.rp_quantum p.rp_jobs
    p.rp_completed p.rp_failed p.rp_shed p.rp_slo_attainment p.rp_goodput
    p.rp_injected p.rp_detected p.rp_job_retries p.rp_p99 p.rp_p99_degradation

let resilience_to_json (r : resilience_bench) =
  Printf.sprintf
    "  \"resilience\": {\n\
    \    \"seed\": %d,\n\
    \    \"slots\": %d,\n\
    \    \"slo_bound\": %d,\n\
    \    \"points\": [\n%s\n    ]\n\
    \  },\n"
    r.res_seed r.res_slots r.res_slo
    (String.concat ",\n" (List.map resilience_point_to_json r.res_points))

let to_json ?sweep ?load ?resilience samples =
  Printf.sprintf
    "{\n\
    \  \"schema\": \"uhm-bench-simulator/5\",\n\
    \  \"generated_by\": \"bench/main.exe perf\",\n\
    \  \"unix_time\": %.0f,\n\
     %s%s%s%s\
    \  \"samples\": [\n%s\n  ]\n}\n"
    (Unix.time ())
    (match sweep with None -> "" | Some s -> sweep_to_json s)
    (match load with None -> "" | Some l -> load_to_json l)
    (match resilience with None -> "" | Some r -> resilience_to_json r)
    (backend_to_json samples)
    (String.concat ",\n" (List.map sample_to_json samples))

let write_json ?sweep ?load ?resilience ~path samples =
  let oc = open_out path in
  output_string oc (to_json ?sweep ?load ?resilience samples);
  close_out oc

(* -- Baseline comparison (the CI perf gate) --------------------------------- *)

(* A minimal recursive-descent JSON reader: just enough to read back the
   documents this module writes (and hand-edited variants of them).  Kept
   here rather than pulling in a JSON package — the repo is dependency-free
   beyond the compiler distribution. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Json_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Json_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; value)
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape");
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "short \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* BMP only; fine for our own ASCII output *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?'
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); J_obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); J_obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); J_arr [])
        else
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); J_arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> J_str (string_lit ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (number ())
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | J_obj fields -> List.assoc_opt key fields
  | _ -> None

let baseline_rates_of_json doc =
  match member "samples" doc with
  | Some (J_arr samples) ->
      List.filter_map
        (fun sample ->
          (* schema v2 samples carry no backend field: they were all
             recorded on the decode backend *)
          let backend =
            match member "backend" sample with
            | Some (J_str b) -> b
            | _ -> "decode"
          in
          match
            ( member "workload" sample,
              member "strategy" sample,
              member "sim_cycles_per_sec" sample )
          with
          | Some (J_str w), Some (J_str s), Some (J_num r) when r > 0. ->
              Some ((w, s, backend), r)
          | _ -> None)
        samples
  | _ -> raise (Json_error "no \"samples\" array")

let read_document ~path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  parse_json contents

let read_baseline ~path = baseline_rates_of_json (read_document ~path)

(* Read back the sections this module writes, so one bench target can
   refresh its own section of BENCH_simulator.json without clobbering
   the others (schema v4 documents carry samples, sweep and load). *)

let j_int = function Some (J_num f) -> Some (int_of_float f) | _ -> None
let j_float = function Some (J_num f) -> Some f | _ -> None
let j_str = function Some (J_str s) -> Some s | _ -> None

let sample_of_json j =
  match
    ( j_str (member "workload" j),
      j_str (member "strategy" j),
      j_int (member "runs" j),
      j_float (member "wall_seconds" j) )
  with
  | Some workload, Some strategy, Some runs, Some wall_seconds ->
      let geti k = Option.value ~default:0 (j_int (member k j)) in
      let getf k = Option.value ~default:0. (j_float (member k j)) in
      Some
        {
          workload;
          strategy;
          backend =
            Option.value ~default:"decode" (j_str (member "backend" j));
          encoding =
            Option.value ~default:"huffman" (j_str (member "encoding" j));
          runs;
          wall_seconds;
          sim_cycles = geti "sim_cycles";
          host_instrs = geti "host_instrs";
          short_instrs = geti "short_instrs";
          dir_steps = geti "dir_steps";
          sim_cycles_per_sec = getf "sim_cycles_per_sec";
          host_instrs_per_sec = getf "host_instrs_per_sec";
          wall_us_per_run = getf "wall_us_per_run";
        }
  | _ -> None

let read_samples ~path =
  match member "samples" (read_document ~path) with
  | Some (J_arr samples) -> List.filter_map sample_of_json samples
  | _ -> []

let read_sweep ~path =
  match member "sweep" (read_document ~path) with
  | Some (J_obj _ as s) -> (
      match
        ( j_int (member "points" s),
          j_int (member "domains" s),
          j_float (member "wall_seconds_1" s),
          j_float (member "wall_seconds_n" s),
          j_float (member "speedup" s),
          member "identical" s )
      with
      | Some points, Some domains, Some w1, Some wn, Some speedup,
        Some (J_bool identical) ->
          Some
            {
              sweep_points = points;
              sweep_domains = domains;
              sweep_wall_1 = w1;
              sweep_wall_n = wn;
              sweep_speedup = speedup;
              sweep_identical = identical;
            }
      | _ -> None)
  | _ -> None

let load_point_of_json j =
  match
    ( j_str (member "policy" j),
      j_float (member "rate" j),
      j_int (member "quantum" j),
      j_int (member "jobs" j) )
  with
  | Some policy, Some rate, Some quantum, Some jobs ->
      let geti k = Option.value ~default:0 (j_int (member k j)) in
      let getf k = Option.value ~default:0. (j_float (member k j)) in
      Some
        {
          lp_policy = policy;
          lp_rate = rate;
          lp_quantum = quantum;
          lp_jobs = jobs;
          lp_completed = geti "completed";
          lp_shed = geti "shed";
          lp_throughput = getf "throughput_per_mcycle";
          lp_p50 = geti "sojourn_p50";
          lp_p95 = geti "sojourn_p95";
          lp_p99 = geti "sojourn_p99";
          lp_mean_slowdown = getf "mean_slowdown";
        }
  | _ -> None

let read_load ~path =
  match member "load" (read_document ~path) with
  | Some (J_obj _ as l) -> (
      match member "points" l with
      | Some (J_arr points) ->
          Some
            {
              load_seed = Option.value ~default:0 (j_int (member "seed" l));
              load_slots = Option.value ~default:0 (j_int (member "slots" l));
              load_points = List.filter_map load_point_of_json points;
            }
      | _ -> None)
  | _ -> None

let resilience_point_of_json j =
  match
    ( j_str (member "policy" j),
      j_float (member "fault_rate" j),
      j_float (member "rate" j),
      j_int (member "quantum" j) )
  with
  | Some policy, Some fault_rate, Some rate, Some quantum ->
      let geti k = Option.value ~default:0 (j_int (member k j)) in
      let getf k = Option.value ~default:0. (j_float (member k j)) in
      Some
        {
          rp_policy = policy;
          rp_fault_rate = fault_rate;
          rp_rate = rate;
          rp_quantum = quantum;
          rp_jobs = geti "jobs";
          rp_completed = geti "completed";
          rp_failed = geti "failed";
          rp_shed = geti "shed";
          rp_slo_attainment = getf "slo_attainment";
          rp_goodput = getf "goodput_per_mcycle";
          rp_injected = geti "injected";
          rp_detected = geti "detected";
          rp_job_retries = geti "job_retries";
          rp_p99 = geti "sojourn_p99";
          rp_p99_degradation = getf "p99_degradation";
        }
  | _ -> None

let read_resilience ~path =
  match member "resilience" (read_document ~path) with
  | Some (J_obj _ as r) -> (
      match member "points" r with
      | Some (J_arr points) ->
          Some
            {
              res_seed = Option.value ~default:0 (j_int (member "seed" r));
              res_slots = Option.value ~default:0 (j_int (member "slots" r));
              res_slo = Option.value ~default:0 (j_int (member "slo_bound" r));
              res_points = List.filter_map resilience_point_of_json points;
            }
      | _ -> None)
  | _ -> None

type regression = {
  reg_workload : string;
  reg_strategy : string;
  reg_backend : string;
  reg_baseline_rel : float;
  reg_current_rel : float;
  reg_drop_pct : float;
}

let check_against_baseline ~max_regression_pct ~baseline samples =
  (* Absolute sim-cycles-per-second depends on the host the baseline was
     recorded on, so compare *relative* rates: each sample normalised by
     the geometric mean of its own file, over the keys the two files
     share.  A uniform host slowdown cancels; a single strategy getting
     slower relative to the others does not. *)
  let current =
    List.filter_map
      (fun s ->
        if s.sim_cycles_per_sec > 0. then
          Some ((s.workload, s.strategy, s.backend), s.sim_cycles_per_sec)
        else None)
      samples
  in
  let shared =
    List.filter_map
      (fun (key, b) ->
        match List.assoc_opt key current with
        | Some c -> Some (key, b, c)
        | None -> None)
      baseline
  in
  match shared with
  | [] ->
      Error
        "no overlapping (workload, strategy, backend) samples with the baseline"
  | _ ->
      let geomean xs =
        exp (List.fold_left (fun a x -> a +. log x) 0. xs
             /. float_of_int (List.length xs))
      in
      let gb = geomean (List.map (fun (_, b, _) -> b) shared) in
      let gc = geomean (List.map (fun (_, _, c) -> c) shared) in
      let regressions =
        List.filter_map
          (fun ((w, s, bk), b, c) ->
            let rb = b /. gb and rc = c /. gc in
            let drop = (rb -. rc) /. rb *. 100. in
            if drop > max_regression_pct then
              Some
                {
                  reg_workload = w;
                  reg_strategy = s;
                  reg_backend = bk;
                  reg_baseline_rel = rb;
                  reg_current_rel = rc;
                  reg_drop_pct = drop;
                }
            else None)
          shared
      in
      Ok regressions
