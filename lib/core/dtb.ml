module SF = Uhm_machine.Short_format

type config = {
  sets : int;
  assoc : int;
  unit_words : int;
  overflow_blocks : int;
}

let config_capacity_words c =
  ((c.sets * c.assoc) + c.overflow_blocks) * c.unit_words

(* 4096 bytes of buffer at 16 bits per short word = 2048 words; with 4-word
   units and 4-way sets that is 96 sets of primaries + overflow, rounded to
   the nearest power-of-two set count: 64 sets * 4 ways * 4 words = 1024
   primary words + 256 overflow blocks * 4 = 1024 overflow words. *)
let paper_config = { sets = 64; assoc = 4; unit_words = 4; overflow_blocks = 256 }

(* Multiprogramming ownership policies for a DTB shared between address
   spaces (see dtb.mli). *)
type policy =
  | Flush_on_switch
  | Tagged
  | Partitioned

let policy_name = function
  | Flush_on_switch -> "flush"
  | Tagged -> "tagged"
  | Partitioned -> "partitioned"

type entry = {
  mutable tag : int;          (* lookup key; -1 invalid *)
  mutable stamp : int;        (* recency timestamp; larger = more recent *)
  mutable chain : int list;   (* overflow block addresses owned *)
  unit_addr : int;            (* primary unit address *)
}

type t = {
  cfg : config;
  entries : entry array array; (* sets x ways *)
  mutable clock : int;         (* recency clock for the replacement array *)
  mutable free_blocks : int list;
  overflow_base : int;         (* first overflow block address *)
  (* single-entry "last translation" cache in front of the tag array: the
     common hit-again-immediately case (a tight DIR loop re-entering the
     same translation) skips the set hash and the way scan.  Entry tags
     change only in [begin_translation], [flush] and [invalidate_asid],
     all of which refresh or clear this cache, so a matching [last_tag]
     is always authoritative.  [use_last_cache] exists so tests can
     differentially check the shortcut against the plain lookup path. *)
  use_last_cache : bool;
  mutable last_tag : int;      (* -1 = empty; a *key*, i.e. ASID-qualified
                                  under Tagged/Partitioned sharing *)
  mutable last_set : int;
  mutable last_way : int;
  (* sharing state; a private DTB is the degenerate single-program case *)
  sharing : policy option;
  programs : int;
  asid_bits : int;             (* 0 when keys are raw DIR addresses *)
  partitions : (int * int) array; (* (first set, set count) per ASID;
                                     empty unless Partitioned *)
  mutable current : int;       (* ASID whose lookups are being served *)
  (* per-ASID activity stamps for the load service's eviction economy:
     the recency-clock value of each ASID's most recent lookup hit or
     installation.  Never reset — [flush] restores the directory, not the
     accounting — so "idle since" comparisons stay monotone. *)
  last_use : int array;
  mutable flushes : int;
  (* open translation state *)
  mutable open_entry : entry option;
  mutable cursor : int;       (* next write address *)
  mutable block_end : int;    (* first address past the current block's
                                 payload (the reserved chain slot) *)
  mutable start_addr : int;
  (* statistics *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable overflow_allocs : int;
  (* observers of entry death, one call per buffer block released: the
     threaded backend drops its compiled closures for exactly the words
     whose directory entry dies (eviction, abort, invalidate, flush) *)
  mutable on_drop : (addr:int -> words:int -> unit) list;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(last_cache = true) cfg ~buffer_base =
  if not (is_power_of_two cfg.sets) then
    invalid_arg "Dtb.create: set count must be a power of two";
  if cfg.unit_words < 2 then invalid_arg "Dtb.create: unit too small";
  let assoc = if cfg.assoc = 0 then cfg.sets else cfg.assoc in
  let cfg = { cfg with assoc } in
  let entries =
    Array.init cfg.sets (fun s ->
        Array.init cfg.assoc (fun w ->
            {
              tag = -1;
              (* way 0 most recent, way [assoc-1] first victim *)
              stamp = -w;
              chain = [];
              unit_addr =
                buffer_base + (((s * cfg.assoc) + w) * cfg.unit_words);
            }))
  in
  let overflow_base = buffer_base + (cfg.sets * cfg.assoc * cfg.unit_words) in
  let free_blocks =
    List.init cfg.overflow_blocks (fun i ->
        overflow_base + (i * cfg.unit_words))
  in
  {
    cfg;
    entries;
    clock = 0;
    free_blocks;
    overflow_base;
    use_last_cache = last_cache;
    last_tag = -1;
    last_set = 0;
    last_way = 0;
    sharing = None;
    programs = 1;
    asid_bits = 0;
    partitions = [||];
    current = 0;
    last_use = Array.make 1 0;
    flushes = 0;
    open_entry = None;
    cursor = 0;
    block_end = 0;
    start_addr = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    overflow_allocs = 0;
    on_drop = [];
  }

let add_drop_hook t f = t.on_drop <- f :: t.on_drop

let fire_drop t ~addr ~words =
  List.iter (fun f -> f ~addr ~words) t.on_drop

(* An entry is dying: report its primary unit and every overflow block it
   chained. *)
let drop_entry t e =
  match t.on_drop with
  | [] -> ()
  | _ ->
      fire_drop t ~addr:e.unit_addr ~words:t.cfg.unit_words;
      List.iter (fun block -> fire_drop t ~addr:block ~words:t.cfg.unit_words)
        e.chain

let rec ceil_log2 n = if n <= 1 then 0 else 1 + ceil_log2 ((n + 1) / 2)

let create_shared ?last_cache ~policy ~programs cfg ~buffer_base =
  if programs < 1 then invalid_arg "Dtb.create_shared: programs must be >= 1";
  (match policy with
  | Partitioned when programs > cfg.sets ->
      invalid_arg "Dtb.create_shared: more programs than sets to partition"
  | _ -> ());
  let t = create ?last_cache cfg ~buffer_base in
  let asid_bits =
    match policy with
    | Flush_on_switch -> 0
    | Tagged | Partitioned -> ceil_log2 programs
  in
  let partitions =
    match policy with
    | Partitioned ->
        (* [sets/programs] sets each, the remainder spread one per ASID
           from ASID 0 up *)
        let k = t.cfg.sets / programs and rem = t.cfg.sets mod programs in
        Array.init programs (fun i ->
            let base = (i * k) + min i rem in
            (base, k + if i < rem then 1 else 0))
    | Flush_on_switch | Tagged -> [||]
  in
  { t with sharing = Some policy; programs; asid_bits; partitions;
    last_use = Array.make programs 0 }

let buffer_words t = config_capacity_words t.cfg

(* The set-selection hash of Figure 2.  DIR addresses are bit addresses, so
   neighbouring instructions differ in the low bits; a simple shift-and-mask
   spreads them well (the hash is a config point for ablations via [sets]).
   [tag] is the raw DIR address: under Tagged sharing the set index ignores
   the ASID (the ASID participates only in the tag match, as in an
   ASID-tagged TLB), so a program's set mapping is identical to the mapping
   it would see on a private DTB.  Under Partitioned sharing the hash is
   folded into the current program's set range instead. *)
let set_of t tag =
  let h = tag lxor (tag lsr 7) in
  if Array.length t.partitions = 0 then h land (t.cfg.sets - 1)
  else
    let base, size = t.partitions.(t.current) in
    base + (h mod size)

(* The key stored in the tag array: the DIR address, ASID-qualified when the
   policy keeps several programs' translations resident at once.  When
   [asid_bits] = 0 the key must be the raw tag even if [current] is nonzero
   (Flush_on_switch tracks the running ASID but relies on the flush, not the
   key, for isolation); folding [current] in with a zero shift would alias
   adjacent DIR addresses, e.g. tags 2k and 2k+1 both keying as 2k lor 1. *)
let key_of t tag =
  if t.asid_bits = 0 then tag else (tag lsl t.asid_bits) lor t.current

(* O(1) timestamp recency in place of the O(assoc) counter shuffle; the
   victim scan in [begin_translation] picks the minimum stamp, which is the
   same entry counter LRU would evict. *)
let touch t set way =
  t.clock <- t.clock + 1;
  t.entries.(set).(way).stamp <- t.clock;
  (* the toucher is always the current ASID: lookup hits and
     installations are the only callers *)
  t.last_use.(t.current) <- t.clock

let lookup t ~tag =
  let key = key_of t tag in
  if t.use_last_cache && key = t.last_tag then begin
    (* shortcut hit: identical statistics and recency update to the full
       probe below, so hit/miss/eviction counts cannot drift *)
    t.hits <- t.hits + 1;
    touch t t.last_set t.last_way;
    `Hit t.entries.(t.last_set).(t.last_way).unit_addr
  end
  else
    let set = set_of t tag in
    let ways = t.entries.(set) in
    let rec find w =
      if w >= Array.length ways then None
      else if ways.(w).tag = key then Some w
      else find (w + 1)
    in
    match find 0 with
    | Some w ->
        t.hits <- t.hits + 1;
        touch t set w;
        t.last_tag <- key;
        t.last_set <- set;
        t.last_way <- w;
        `Hit ways.(w).unit_addr
    | None ->
        t.misses <- t.misses + 1;
        `Miss

let begin_translation t ~tag =
  if t.open_entry <> None then failwith "Dtb: translation already open";
  let key = key_of t tag in
  let set = set_of t tag in
  let ways = t.entries.(set) in
  let victim = ref 0 in
  Array.iteri (fun w e -> if e.stamp < ways.(!victim).stamp then victim := w) ways;
  let e = ways.(!victim) in
  if e.tag >= 0 then begin
    t.evictions <- t.evictions + 1;
    drop_entry t e;
    (* the replacement logic releases the victim's overflow chain *)
    t.free_blocks <- e.chain @ t.free_blocks;
    e.chain <- []
  end;
  e.tag <- key;
  touch t set !victim;
  (* a place a tag changes: point the last-translation cache at the
     entry being (re)installed so it can never go stale *)
  t.last_tag <- key;
  t.last_set <- set;
  t.last_way <- !victim;
  t.open_entry <- Some e;
  t.cursor <- e.unit_addr;
  t.block_end <- e.unit_addr + t.cfg.unit_words - 1;
  t.start_addr <- e.unit_addr

let emit t _word =
  let e =
    match t.open_entry with
    | Some e -> e
    | None -> failwith "Dtb.emit: no open translation"
  in
  if t.cursor < t.block_end then begin
    let addr = t.cursor in
    t.cursor <- addr + 1;
    (addr, [])
  end
  else begin
    (* current block full: chain a fresh overflow block through the
       reserved slot *)
    match t.free_blocks with
    | [] -> failwith "Dtb.emit: overflow area exhausted"
    | block :: rest ->
        t.free_blocks <- rest;
        t.overflow_allocs <- t.overflow_allocs + 1;
        e.chain <- block :: e.chain;
        let goto_addr = t.block_end in
        let goto_word = SF.pack SF.Goto block in
        t.cursor <- block + 1;
        t.block_end <- block + t.cfg.unit_words - 1;
        (block, [ (goto_addr, goto_word) ])
  end

let end_translation t =
  match t.open_entry with
  | None -> failwith "Dtb.end_translation: no open translation"
  | Some _ ->
      t.open_entry <- None;
      t.start_addr

(* A translation that will never complete — the translating machine
   stopped on a fault mid-install — must not leave the directory open:
   every flush/invalidate entry point refuses while a translation is in
   progress.  Aborting drops the half-installed entry (the tag went live
   at [begin_translation]) and returns its overflow chain, leaving the
   directory exactly as if the miss had never been serviced. *)
let abort_translation t =
  match t.open_entry with
  | None -> failwith "Dtb.abort_translation: no open translation"
  | Some e ->
      if t.last_tag = e.tag then t.last_tag <- -1;
      e.tag <- -1;
      drop_entry t e;
      t.free_blocks <- e.chain @ t.free_blocks;
      e.chain <- [];
      t.open_entry <- None

(* -- Multiprogramming --------------------------------------------------------

   [flush] restores the directory to its creation state exactly (tags,
   per-way stamp order, canonical free-block order), so a run after a flush
   is indistinguishable from a run on a fresh DTB: the quantum-to-infinity
   limit of Flush_on_switch scheduling reproduces single-program results
   bit for bit.  Cumulative statistics and the recency clock survive. *)

let flush t =
  if t.open_entry <> None then failwith "Dtb.flush: translation open";
  Array.iter
    (fun ways ->
      Array.iteri
        (fun w e ->
          e.tag <- -1;
          e.stamp <- -w;
          e.chain <- [])
        ways)
    t.entries;
  t.free_blocks <-
    List.init t.cfg.overflow_blocks (fun i ->
        t.overflow_base + (i * t.cfg.unit_words));
  (* PR 2's single-entry shortcut caches a (key, set, way) triple outside
     the tag array; clearing the array without clearing the shortcut would
     let a stale hit survive the flush *)
  t.last_tag <- -1;
  t.flushes <- t.flushes + 1;
  (* one range drop covering the whole buffer (primaries + overflow) *)
  (match t.on_drop with
  | [] -> ()
  | _ ->
      fire_drop t ~addr:t.entries.(0).(0).unit_addr ~words:(buffer_words t))

let invalidate_asid t ~asid =
  if t.asid_bits = 0 && t.sharing <> None then
    invalid_arg "Dtb.invalidate_asid: DTB is not ASID-tagged";
  if t.sharing = None then invalid_arg "Dtb.invalidate_asid: private DTB";
  if asid < 0 || asid >= t.programs then
    invalid_arg "Dtb.invalidate_asid: ASID out of range";
  if t.open_entry <> None then failwith "Dtb.invalidate_asid: translation open";
  let mask = (1 lsl t.asid_bits) - 1 in
  let dropped = ref 0 in
  Array.iter
    (fun ways ->
      Array.iter
        (fun e ->
          if e.tag >= 0 && e.tag land mask = asid then begin
            incr dropped;
            e.tag <- -1;
            drop_entry t e;
            t.free_blocks <- e.chain @ t.free_blocks;
            e.chain <- []
          end)
        ways)
    t.entries;
  (* same coherence rule as [flush]: the shortcut must not outlive the
     entries it points at *)
  if t.last_tag >= 0 && t.last_tag land mask = asid then t.last_tag <- -1;
  !dropped

let switch_to t ~asid =
  match t.sharing with
  | None -> invalid_arg "Dtb.switch_to: private DTB"
  | Some policy ->
      if asid < 0 || asid >= t.programs then
        invalid_arg "Dtb.switch_to: ASID out of range";
      if asid <> t.current then begin
        t.current <- asid;
        match policy with
        | Flush_on_switch -> flush t
        | Tagged | Partitioned -> ()
      end

let sharing t = t.sharing
let current_asid t = t.current

let hits t = t.hits
let misses t = t.misses

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let evictions t = t.evictions
let overflow_allocations t = t.overflow_allocs
let flushes t = t.flushes

let resident_entries t =
  Array.fold_left
    (fun acc ways ->
      acc + Array.fold_left (fun a e -> if e.tag >= 0 then a + 1 else a) 0 ways)
    0 t.entries

(* -- Per-ASID idle/footprint accounting --------------------------------------

   The load service's eviction economy scores resident ASIDs by how long
   they have been idle (in recency-clock ticks, the DTB's own notion of
   time) and how much of the directory they hold.  Footprint is an exact
   scan rather than an incrementally maintained counter: it is read a
   handful of times per admission, and a scan cannot drift from the tag
   array under corruption or recovery invalidations. *)

let use_clock t = t.clock

let asid_last_use t ~asid =
  if asid < 0 || asid >= t.programs then
    invalid_arg "Dtb.asid_last_use: ASID out of range";
  t.last_use.(asid)

let asid_footprint t ~asid =
  if asid < 0 || asid >= t.programs then
    invalid_arg "Dtb.asid_footprint: ASID out of range";
  if t.asid_bits = 0 then
    (* untagged keys: everything resident belongs to the current ASID *)
    if asid = t.current then resident_entries t else 0
  else
    let mask = (1 lsl t.asid_bits) - 1 in
    Array.fold_left
      (fun acc ways ->
        acc
        + Array.fold_left
            (fun a e -> if e.tag >= 0 && e.tag land mask = asid then a + 1 else a)
            0 ways)
      0 t.entries

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.overflow_allocs <- 0

(* -- Resilience hooks --------------------------------------------------------

   [invalidate] is the recovery path's targeted drop: a guard mismatch on a
   hit means the entry the key led to cannot be trusted, so the entry (and,
   after tag corruption, any duplicate carrying the same key) is removed
   and the next INTERP re-misses and retranslates.  [corrupt_resident_tag]
   is the injection side: it models a single-event upset in the associative
   tag array.  The last-translation shortcut mirrors the tag array in both
   directions — corruption updates a mirrored key, invalidation clears it —
   so the shortcut can neither mask nor outlive a fault in the array it
   caches. *)

let invalidate t ~tag =
  if t.open_entry <> None then failwith "Dtb.invalidate: translation open";
  let key = key_of t tag in
  let set = set_of t tag in
  let dropped = ref false in
  Array.iter
    (fun e ->
      if e.tag = key then begin
        dropped := true;
        e.tag <- -1;
        drop_entry t e;
        t.free_blocks <- e.chain @ t.free_blocks;
        e.chain <- []
      end)
    t.entries.(set);
  if t.last_tag = key then t.last_tag <- -1;
  !dropped

(* Key width reachable by a flip: DIR bit addresses stay well under 2^20
   for every suite program, plus the ASID qualifier bits. *)
let key_flip_bits = 20

let corrupt_resident_tag t ~pick ~flip =
  if t.open_entry <> None then
    failwith "Dtb.corrupt_resident_tag: translation open";
  let resident = resident_entries t in
  if resident = 0 then None
  else begin
    let target = ((pick mod resident) + resident) mod resident in
    let found = ref None in
    let seen = ref 0 in
    (try
       Array.iteri
         (fun s ways ->
           Array.iteri
             (fun w e ->
               if e.tag >= 0 then begin
                 if !seen = target then begin
                   found := Some (s, w, e);
                   raise Exit
                 end;
                 incr seen
               end)
             ways)
         t.entries
     with Exit -> ());
    match !found with
    | None -> None
    | Some (s, w, e) ->
        let bits = key_flip_bits + t.asid_bits in
        let old_key = e.tag in
        let bit = ((flip mod bits) + bits) mod bits in
        let new_key = old_key lxor (1 lsl bit) in
        e.tag <- new_key;
        if t.use_last_cache && t.last_set = s && t.last_way = w
           && t.last_tag = old_key
        then t.last_tag <- new_key;
        Some (old_key, new_key)
  end
