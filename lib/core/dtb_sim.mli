(** Trace-driven DTB simulation.

    Geometry sweeps (capacity, associativity, allocation policy) need many
    DTB configurations over the same instruction stream.  The DTB's hit/miss
    behaviour depends only on the sequence of DIR addresses presented to
    INTERP — exactly the reference interpreter's instruction trace — so this
    module replays that trace against a {!Dtb.t} without building a machine.
    [test/test_core.ml] checks that the replay matches the full machine's
    hit ratios, miss counts and emitted-word counts exactly. *)

val translation_words : Uhm_dir.Isa.instr -> int
(** Short words the per-instruction dynamic translator emits for this
    instruction (must agree with [Translate_gen]'s templates). *)

type result = {
  references : int;
  hit_ratio : float;
  misses : int;
  evictions : int;
  overflow_allocations : int;
  words_emitted : int;
}

val replay : ?addr_of:(int -> int) -> config:Dtb.config -> Uhm_dir.Program.t
  -> result
(** [replay ~config p] drives a fresh DTB with [p]'s dynamic instruction
    stream.  [addr_of] maps instruction indices to the DIR addresses used as
    tags (default: the index itself).  Raises [Failure] if the program traps
    or runs out of fuel. *)

val replay_encoded : config:Dtb.config -> Uhm_encoding.Codec.encoded -> result
(** [replay_encoded ~config e] tags with [e]'s bit addresses, matching what
    the machine's INTERP sees for that encoding. *)
