(** Code generation: checked Algol-S AST → DIR program.

    Binding work done here, once, at compile time (paper §2.3): names become
    contour-relative (static-hops, frame-offset) pairs, removing the need for
    an associative memory; the block structure is flattened to a sequential
    stack code; string redundancy is gone.

    Layout discipline: {e no label is ever entered by falling through} — the
    emitter inserts an explicit [Jump] whenever code would otherwise run into
    a branch target.  This makes predecessor-conditioned (digram) decoding
    well-defined at every control transfer, which the dynamic translator
    relies on (see DESIGN.md).

    Procedure bodies are emitted inline at their declaration point, guarded
    by a jump over them; the program entry is always instruction 0. *)

exception Codegen_error of string

val compile : Uhm_hlr.Ast.program -> Uhm_dir.Program.t
(** [compile p] translates a program that passed {!Uhm_hlr.Check.check};
    raises {!Codegen_error} on programs that violate the checker's
    invariants. *)
