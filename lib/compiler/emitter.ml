(* Instruction emitter with labels and backpatching, shared by every
   front end that targets the DIR (the Algol-S code generator and the
   Fortran-S code generator).

   It enforces the no-fall-through-into-labels discipline that makes
   predecessor-conditioned (digram) decoding sound: placing a label while
   control can flow into it from above inserts an explicit jump to the
   label, so every arrival at a branch target is a control transfer. *)

module Isa = Uhm_dir.Isa

exception Emit_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Emit_error s)) fmt

  type fixup_field = Field_a

  type t = {
    mutable code : Isa.instr array;
    mutable ctxs : int array;      (* contour id per emitted instruction *)
    mutable len : int;
    mutable labels : int array;    (* label -> instruction index, -1 unplaced *)
    mutable n_labels : int;
    mutable fixups : (int * fixup_field * int) list; (* instr, field, label *)
    mutable current_ctx : int;
    (* whether control can flow into the next emitted instruction from the
       previous one; drives end-jump/back-edge emission and the
       no-fall-through-into-labels discipline *)
    mutable reachable : bool;
  }

  let create () =
    {
      code = Array.make 64 (Isa.instr Isa.Halt);
      ctxs = Array.make 64 0;
      len = 0;
      labels = Array.make 16 (-1);
      n_labels = 0;
      fixups = [];
      current_ctx = 0;
      reachable = true;
    }

  let emit t instr =
    if t.len = Array.length t.code then begin
      let grow a fill =
        let fresh = Array.make (2 * Array.length a) fill in
        Array.blit a 0 fresh 0 (Array.length a);
        fresh
      in
      t.code <- grow t.code (Isa.instr Isa.Halt);
      t.ctxs <- grow t.ctxs 0
    end;
    t.code.(t.len) <- instr;
    t.ctxs.(t.len) <- t.current_ctx;
    t.len <- t.len + 1;
    if not (Isa.falls_through instr.Isa.op) then t.reachable <- false;
    t.len - 1

  let reachable t = t.reachable

  let new_label t =
    if t.n_labels = Array.length t.labels then begin
      let fresh = Array.make (2 * t.n_labels) (-1) in
      Array.blit t.labels 0 fresh 0 t.n_labels;
      t.labels <- fresh
    end;
    t.n_labels <- t.n_labels + 1;
    t.n_labels - 1

  (* Emit [op] whose [field] will hold the label's final index. *)
  let emit_ref t ?(a = 0) ?(b = 0) ?(c = 0) op ~field label =
    let idx = emit t (Isa.instr ~a ~b ~c op) in
    t.fixups <- (idx, field, label) :: t.fixups

  (* Place [label] here, preserving the no-fall-through-into-labels
     discipline: if control could flow into this spot from above, route that
     flow through an explicit jump to the label itself, so that every
     arrival at a label is a control transfer. *)
  let place_label t label =
    if t.labels.(label) <> -1 then error "label %d placed twice" label;
    if t.reachable then emit_ref t Isa.Jump ~field:Field_a label;
    t.labels.(label) <- t.len;
    t.reachable <- true

  (* Direct backpatching of an arbitrary field (used for Enter local counts). *)
  let patch_b t idx value =
    let i = t.code.(idx) in
    t.code.(idx) <- { i with Isa.b = value }

  (* Resolved address of a placed label, if any. *)
  let resolve_label t label =
    if label < 0 || label >= t.n_labels then None
    else
      let a = t.labels.(label) in
      if a < 0 then None else Some a

  let finish t =
    List.iter
      (fun (idx, field, label) ->
        let target = t.labels.(label) in
        if target < 0 then error "label %d never placed" label;
        let i = t.code.(idx) in
        t.code.(idx) <-
          (match field with Field_a -> { i with Isa.a = target }))
      t.fixups;
    (Array.sub t.code 0 t.len, Array.sub t.ctxs 0 t.len)
