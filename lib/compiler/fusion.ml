module Isa = Uhm_dir.Isa
module Program = Uhm_dir.Program

let rules_description =
  [
    ("load l,o; lit 1; add; store l,o", "incvar l,o");
    ("load l,o; lit 1; sub; store l,o", "decvar l,o");
    ("lit k; add", "litadd k");
    ("lit k; sub", "litsub k");
    ("lit k; mul", "litmul k");
    ("load l,o; add", "loadadd l,o");
    ("load l,o; sub", "loadsub l,o");
    ("load l,o; mul", "loadmul l,o");
    ("eq; jz t", "cjeq t");
    ("ne; jz t", "cjne t");
    ("lt; jz t", "cjlt t");
    ("le; jz t", "cjle t");
    ("gt; jz t", "cjgt t");
    ("ge; jz t", "cjge t");
  ]

(* Try to match a fusion window starting at [i]; [targetable k] says whether
   instruction [k] can be entered by a branch (fusion must not swallow it).
   Returns the fused instruction and the window length. *)
let match_at code targetable i =
  let n = Array.length code in
  let get k = code.(k) in
  let free k = k < n && not (targetable k) in
  let instr = get i in
  (* incvar / decvar: load l,o; lit 1; add|sub; store l,o *)
  let incdec () =
    if
      i + 3 < n
      && free (i + 1) && free (i + 2) && free (i + 3)
      && Isa.equal_opcode instr.Isa.op Isa.Load
      && Isa.equal_opcode (get (i + 1)).Isa.op Isa.Lit
      && (get (i + 1)).Isa.a = 1
      && Isa.equal_opcode (get (i + 3)).Isa.op Isa.Store
      && (get (i + 3)).Isa.a = instr.Isa.a
      && (get (i + 3)).Isa.b = instr.Isa.b
    then
      match (get (i + 2)).Isa.op with
      | Isa.Add -> Some (Isa.instr ~a:instr.Isa.a ~b:instr.Isa.b Isa.Incvar, 4)
      | Isa.Sub -> Some (Isa.instr ~a:instr.Isa.a ~b:instr.Isa.b Isa.Decvar, 4)
      | _ -> None
    else None
  in
  let lit_arith () =
    if
      i + 1 < n && free (i + 1)
      && Isa.equal_opcode instr.Isa.op Isa.Lit
    then
      match (get (i + 1)).Isa.op with
      | Isa.Add -> Some (Isa.instr ~a:instr.Isa.a Isa.Litadd, 2)
      | Isa.Sub -> Some (Isa.instr ~a:instr.Isa.a Isa.Litsub, 2)
      | Isa.Mul -> Some (Isa.instr ~a:instr.Isa.a Isa.Litmul, 2)
      | _ -> None
    else None
  in
  let load_arith () =
    if
      i + 1 < n && free (i + 1)
      && Isa.equal_opcode instr.Isa.op Isa.Load
    then
      match (get (i + 1)).Isa.op with
      | Isa.Add -> Some (Isa.instr ~a:instr.Isa.a ~b:instr.Isa.b Isa.Loadadd, 2)
      | Isa.Sub -> Some (Isa.instr ~a:instr.Isa.a ~b:instr.Isa.b Isa.Loadsub, 2)
      | Isa.Mul -> Some (Isa.instr ~a:instr.Isa.a ~b:instr.Isa.b Isa.Loadmul, 2)
      | _ -> None
    else None
  in
  let cmp_branch () =
    if i + 1 < n && free (i + 1)
       && Isa.equal_opcode (get (i + 1)).Isa.op Isa.Jz
    then
      let target = (get (i + 1)).Isa.a in
      match instr.Isa.op with
      | Isa.Eq -> Some (Isa.instr ~a:target Isa.Cjeq, 2)
      | Isa.Ne -> Some (Isa.instr ~a:target Isa.Cjne, 2)
      | Isa.Lt -> Some (Isa.instr ~a:target Isa.Cjlt, 2)
      | Isa.Le -> Some (Isa.instr ~a:target Isa.Cjle, 2)
      | Isa.Gt -> Some (Isa.instr ~a:target Isa.Cjgt, 2)
      | Isa.Ge -> Some (Isa.instr ~a:target Isa.Cjge, 2)
      | _ -> None
    else None
  in
  (* longest first *)
  match incdec () with
  | Some _ as r -> r
  | None -> (
      match cmp_branch () with
      | Some _ as r -> r
      | None -> (
          match load_arith () with
          | Some _ as r -> r
          | None -> lit_arith ()))

let fuse (p : Program.t) =
  let code = p.Program.code in
  let n = Array.length code in
  let targetable = Array.make n false in
  Array.iter
    (fun { Isa.op; a; _ } ->
      match Isa.shape op with
      | Isa.Shape_target | Isa.Shape_call -> targetable.(a) <- true
      | _ -> ())
    code;
  targetable.(p.Program.entry) <- true;
  let contour_map = Program.contour_of_instr p in
  let fused = ref [] in
  let fused_ctx = ref [] in
  let new_index = Array.make (n + 1) 0 in
  let out = ref 0 in
  let i = ref 0 in
  while !i < n do
    new_index.(!i) <- !out;
    let instr, window =
      match match_at code (fun k -> targetable.(k)) !i with
      | Some (instr, window) -> (instr, window)
      | None -> (code.(!i), 1)
    in
    (* indices swallowed by the window map to the fused instruction *)
    for k = !i to !i + window - 1 do
      new_index.(k) <- !out
    done;
    fused := instr :: !fused;
    fused_ctx := contour_map.(!i) :: !fused_ctx;
    incr out;
    i := !i + window
  done;
  new_index.(n) <- !out;
  let code' = Array.of_list (List.rev !fused) in
  let ctx' = Array.of_list (List.rev !fused_ctx) in
  (* remap branch and call targets *)
  let code' =
    Array.map
      (fun ({ Isa.op; a; _ } as instr) ->
        match Isa.shape op with
        | Isa.Shape_target | Isa.Shape_call -> { instr with Isa.a = new_index.(a) }
        | _ -> instr)
      code'
  in
  Program.validate_exn
    (Program.make ~contour_map:ctx' ~name:p.Program.name ~code:code'
       ~entry:new_index.(p.Program.entry) ~contours:p.Program.contours ())
