open Uhm_hlr.Ast
module Isa = Uhm_dir.Isa
module Program = Uhm_dir.Program

exception Codegen_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt


(* -- Scope environment ----------------------------------------------------- *)

type binding =
  | Scalar_slot of { depth : int; offset : int }
  | Array_slot of { depth : int; offset : int; size : int }
  | Proc_sym of proc_sym

and proc_sym = {
  label : int;
  arity : int;
  parent_depth : int;   (* static depth of the contour declaring the proc *)
  ctx_id : int;
}

(* Per-contour emission state. *)
type cstate = {
  depth : int;
  ctx_id : int;
  cname : string;
  n_args : int;
  mutable next_offset : int;
  mutable max_offset : int;
}

type st = {
  em : Emitter.t;
  mutable contours : (int * Program.contour) list; (* ctx_id -> record, rev *)
  mutable n_contours : int;
}

let lookup scopes name =
  let rec go = function
    | [] -> error "undeclared name %s (checker should have caught this)" name
    | scope :: outer -> (
        match List.assoc_opt name scope with
        | Some binding -> binding
        | None -> go outer)
  in
  go scopes

let alloc_slot cstate n =
  let offset = cstate.next_offset in
  cstate.next_offset <- offset + n;
  cstate.max_offset <- max cstate.max_offset (cstate.next_offset - 1);
  offset

let touch_offset cstate offset =
  cstate.max_offset <- max cstate.max_offset offset

(* -- Expression compilation ------------------------------------------------ *)

let rec compile_expr st scopes cstate e =
  let em = st.em in
  match e with
  | Num n -> ignore (Emitter.emit em (Isa.instr ~a:n Isa.Lit))
  | Var name -> (
      match lookup scopes name with
      | Scalar_slot { depth; offset } ->
          touch_offset cstate offset;
          ignore
            (Emitter.emit em
               (Isa.instr ~a:(cstate.depth - depth) ~b:offset Isa.Load))
      | Array_slot _ -> error "array %s read as scalar" name
      | Proc_sym _ -> error "procedure %s read as scalar" name)
  | Subscript (name, index) -> (
      match lookup scopes name with
      | Array_slot { depth; offset; size = _ } ->
          touch_offset cstate offset;
          ignore
            (Emitter.emit em
               (Isa.instr ~a:(cstate.depth - depth) ~b:offset Isa.Addr));
          compile_expr st scopes cstate index;
          ignore (Emitter.emit em (Isa.instr Isa.Index));
          ignore (Emitter.emit em (Isa.instr Isa.Loadi))
      | Scalar_slot _ | Proc_sym _ -> error "%s is not an array" name)
  | Call_expr (name, args) -> compile_call st scopes cstate name args
  | Unop (Neg_op, inner) ->
      compile_expr st scopes cstate inner;
      ignore (Emitter.emit em (Isa.instr Isa.Neg))
  | Unop (Not_op, inner) ->
      compile_expr st scopes cstate inner;
      ignore (Emitter.emit em (Isa.instr Isa.Not))
  | Binop (op, lhs, rhs) ->
      compile_expr st scopes cstate lhs;
      compile_expr st scopes cstate rhs;
      let opcode =
        match op with
        | Add_op -> Isa.Add
        | Sub_op -> Isa.Sub
        | Mul_op -> Isa.Mul
        | Div_op -> Isa.Div
        | Mod_op -> Isa.Mod
        | Eq_op -> Isa.Eq
        | Ne_op -> Isa.Ne
        | Lt_op -> Isa.Lt
        | Le_op -> Isa.Le
        | Gt_op -> Isa.Gt
        | Ge_op -> Isa.Ge
        | And_op -> Isa.And
        | Or_op -> Isa.Or
      in
      ignore (Emitter.emit em (Isa.instr opcode))

and compile_call st scopes cstate name args =
  match lookup scopes name with
  | Proc_sym { label; arity; parent_depth; ctx_id = _ } ->
      if List.length args <> arity then error "arity mismatch calling %s" name;
      List.iter (compile_expr st scopes cstate) args;
      Emitter.emit_ref st.em Isa.Call ~field:Emitter.Field_a
        ~b:(cstate.depth - parent_depth) label
  | Scalar_slot _ | Array_slot _ -> error "%s is not a procedure" name

(* -- Statement compilation ------------------------------------------------- *)

let store_scalar st scopes cstate name =
  match lookup scopes name with
  | Scalar_slot { depth; offset } ->
      touch_offset cstate offset;
      ignore
        (Emitter.emit st.em
           (Isa.instr ~a:(cstate.depth - depth) ~b:offset Isa.Store))
  | Array_slot _ | Proc_sym _ -> error "%s is not a scalar" name

let rec compile_stmt st scopes cstate s =
  let em = st.em in
  match s with
  | Skip -> ()
  | Assign (name, e) ->
      compile_expr st scopes cstate e;
      store_scalar st scopes cstate name
  | Assign_sub (name, index, value) -> (
      match lookup scopes name with
      | Array_slot { depth; offset; size = _ } ->
          touch_offset cstate offset;
          ignore
            (Emitter.emit em
               (Isa.instr ~a:(cstate.depth - depth) ~b:offset Isa.Addr));
          compile_expr st scopes cstate index;
          ignore (Emitter.emit em (Isa.instr Isa.Index));
          compile_expr st scopes cstate value;
          ignore (Emitter.emit em (Isa.instr Isa.Storei))
      | Scalar_slot _ | Proc_sym _ -> error "%s is not an array" name)
  | If (cond, then_branch, None) ->
      let l_end = Emitter.new_label em in
      compile_expr st scopes cstate cond;
      Emitter.emit_ref em Isa.Jz ~field:Emitter.Field_a l_end;
      compile_stmt st scopes cstate then_branch;
      Emitter.place_label em l_end
  | If (cond, then_branch, Some else_branch) ->
      let l_else = Emitter.new_label em in
      let l_end = Emitter.new_label em in
      compile_expr st scopes cstate cond;
      Emitter.emit_ref em Isa.Jz ~field:Emitter.Field_a l_else;
      compile_stmt st scopes cstate then_branch;
      (if Emitter.reachable em then
         Emitter.emit_ref em Isa.Jump ~field:Emitter.Field_a l_end);
      Emitter.place_label em l_else;
      compile_stmt st scopes cstate else_branch;
      Emitter.place_label em l_end
  | While (cond, body) ->
      let l_cond = Emitter.new_label em in
      let l_end = Emitter.new_label em in
      Emitter.place_label em l_cond;
      compile_expr st scopes cstate cond;
      Emitter.emit_ref em Isa.Jz ~field:Emitter.Field_a l_end;
      compile_stmt st scopes cstate body;
      (if Emitter.reachable em then
         Emitter.emit_ref em Isa.Jump ~field:Emitter.Field_a l_cond);
      Emitter.place_label em l_end
  | For (var, start, dir, stop, body) ->
      (* bound evaluated once into a hidden frame slot of this contour *)
      let bound = alloc_slot cstate 1 in
      let l_cond = Emitter.new_label em in
      let l_end = Emitter.new_label em in
      compile_expr st scopes cstate start;
      store_scalar st scopes cstate var;
      compile_expr st scopes cstate stop;
      ignore (Emitter.emit em (Isa.instr ~a:0 ~b:bound Isa.Store));
      Emitter.place_label em l_cond;
      compile_expr st scopes cstate (Var var);
      ignore (Emitter.emit em (Isa.instr ~a:0 ~b:bound Isa.Load));
      ignore
        (Emitter.emit em
           (Isa.instr (match dir with Upto -> Isa.Le | Downto -> Isa.Ge)));
      Emitter.emit_ref em Isa.Jz ~field:Emitter.Field_a l_end;
      compile_stmt st scopes cstate body;
      compile_expr st scopes cstate (Var var);
      ignore (Emitter.emit em (Isa.instr ~a:1 Isa.Lit));
      ignore
        (Emitter.emit em
           (Isa.instr (match dir with Upto -> Isa.Add | Downto -> Isa.Sub)));
      store_scalar st scopes cstate var;
      (if Emitter.reachable em then
         Emitter.emit_ref em Isa.Jump ~field:Emitter.Field_a l_cond);
      Emitter.place_label em l_end
  | Print e ->
      compile_expr st scopes cstate e;
      ignore (Emitter.emit em (Isa.instr Isa.Print))
  | Printc e ->
      compile_expr st scopes cstate e;
      ignore (Emitter.emit em (Isa.instr Isa.Printc))
  | Write s ->
      String.iter
        (fun ch ->
          ignore (Emitter.emit em (Isa.instr ~a:(Char.code ch) Isa.Lit));
          ignore (Emitter.emit em (Isa.instr Isa.Printc)))
        s
  | Call_stmt (name, args) ->
      compile_call st scopes cstate name args;
      ignore (Emitter.emit em (Isa.instr Isa.Drop))
  | Return None ->
      ignore (Emitter.emit em (Isa.instr ~a:0 Isa.Lit));
      ignore (Emitter.emit em (Isa.instr Isa.Ret))
  | Return (Some e) ->
      compile_expr st scopes cstate e;
      ignore (Emitter.emit em (Isa.instr Isa.Ret))
  | Block b -> compile_block st scopes cstate b

(* -- Blocks and procedures -------------------------------------------------- *)

and compile_block st scopes cstate b =
  let em = st.em in
  (* Allocate frame slots and create procedure symbols for the whole block
     first (letrec visibility). *)
  let scope =
    List.map
      (function
        | Var_decl (name, _) ->
            (name, Scalar_slot { depth = cstate.depth; offset = alloc_slot cstate 1 })
        | Array_decl (name, size) ->
            ( name,
              Array_slot
                { depth = cstate.depth; offset = alloc_slot cstate size; size } )
        | Proc_decl (name, params, _) ->
            ( name,
              Proc_sym
                {
                  label = Emitter.new_label em;
                  arity = List.length params;
                  parent_depth = cstate.depth;
                  ctx_id = -1 (* assigned when the body is emitted *);
                } ))
      b.decls
  in
  let scopes = scope :: scopes in
  (* Emit procedure bodies, guarded by a jump over them. *)
  let procs =
    List.filter_map
      (function
        | Proc_decl (name, params, body) -> (
            match List.assoc name scope with
            | Proc_sym sym -> Some (name, params, body, sym)
            | _ -> None)
        | Var_decl _ | Array_decl _ -> None)
      b.decls
  in
  (if procs <> [] then begin
     let l_skip = Emitter.new_label em in
     if Emitter.reachable em then
       Emitter.emit_ref em Isa.Jump ~field:Emitter.Field_a l_skip;
     List.iter
       (fun (name, params, body, sym) ->
         compile_proc st scopes cstate name params body sym)
       procs;
     Emitter.place_label em l_skip
   end);
  (* Initialisers, in declaration order. *)
  List.iter
    (function
      | Var_decl (name, Some init) ->
          compile_expr st scopes cstate init;
          store_scalar st scopes cstate name
      | Var_decl (_, None) | Array_decl _ | Proc_decl _ -> ())
    b.decls;
  List.iter (compile_stmt st scopes cstate) b.stmts

and compile_proc st scopes parent name params body sym =
  let em = st.em in
  let ctx_id = st.n_contours in
  st.n_contours <- ctx_id + 1;
  let cstate =
    {
      depth = parent.depth + 1;
      ctx_id;
      cname = name;
      n_args = List.length params;
      next_offset = List.length params;
      max_offset = max 0 (List.length params - 1);
    }
  in
  let param_scope =
    List.mapi
      (fun i p -> (p, Scalar_slot { depth = cstate.depth; offset = i }))
      params
  in
  let saved_ctx = em.Emitter.current_ctx in
  em.Emitter.current_ctx <- ctx_id;
  Emitter.place_label em sym.label;
  let enter_idx =
    Emitter.emit em (Isa.instr ~a:cstate.n_args ~b:0 ~c:ctx_id Isa.Enter)
  in
  compile_block st (param_scope :: scopes) cstate body;
  (if Emitter.reachable em then begin
     ignore (Emitter.emit em (Isa.instr ~a:0 Isa.Lit));
     ignore (Emitter.emit em (Isa.instr Isa.Ret))
   end);
  Emitter.patch_b em enter_idx (cstate.next_offset - cstate.n_args);
  em.Emitter.current_ctx <- saved_ctx;
  st.contours <-
    ( ctx_id,
      {
        Program.id = ctx_id;
        name = cstate.cname;
        depth = cstate.depth;
        n_args = cstate.n_args;
        n_locals = cstate.next_offset - cstate.n_args;
        max_offset = cstate.max_offset;
      } )
    :: st.contours

let compile (p : program) =
  let em = Emitter.create () in
  let st = { em; contours = []; n_contours = 1 } in
  let main_cstate =
    { depth = 0; ctx_id = 0; cname = "<main>"; n_args = 0; next_offset = 0;
      max_offset = 0 }
  in
  compile_block st [] main_cstate p.body;
  ignore (Emitter.emit em (Isa.instr Isa.Halt));
  st.contours <-
    ( 0,
      {
        Program.id = 0;
        name = "<main>";
        depth = 0;
        n_args = 0;
        n_locals = main_cstate.next_offset;
        max_offset = main_cstate.max_offset;
      } )
    :: st.contours;
  let code, contour_map = Emitter.finish em in
  let contours = Array.make st.n_contours (List.assoc 0 st.contours) in
  List.iter (fun (id, c) -> contours.(id) <- c) st.contours;
  Program.validate_exn
    (Program.make ~contour_map ~name:p.name ~code ~entry:0 ~contours ())
