open Uhm_hlr.Ast

let of_bool b = if b then 1 else 0

let rec expr e =
  match e with
  | Num _ | Var _ -> e
  | Subscript (name, index) -> Subscript (name, expr index)
  | Call_expr (name, args) -> Call_expr (name, List.map expr args)
  | Unop (op, inner) -> (
      match (op, expr inner) with
      | Neg_op, Num n -> Num (-n)
      | Not_op, Num n -> Num (of_bool (n = 0))
      | op, folded -> Unop (op, folded))
  | Binop (op, lhs, rhs) -> (
      match (op, expr lhs, expr rhs) with
      | Add_op, Num x, Num y -> Num (x + y)
      | Sub_op, Num x, Num y -> Num (x - y)
      | Mul_op, Num x, Num y -> Num (x * y)
      | Div_op, Num x, Num y when y <> 0 -> Num (x / y)
      | Mod_op, Num x, Num y when y <> 0 -> Num (x mod y)
      | Eq_op, Num x, Num y -> Num (of_bool (x = y))
      | Ne_op, Num x, Num y -> Num (of_bool (x <> y))
      | Lt_op, Num x, Num y -> Num (of_bool (x < y))
      | Le_op, Num x, Num y -> Num (of_bool (x <= y))
      | Gt_op, Num x, Num y -> Num (of_bool (x > y))
      | Ge_op, Num x, Num y -> Num (of_bool (x >= y))
      | And_op, Num x, Num y -> Num (of_bool (x <> 0 && y <> 0))
      | Or_op, Num x, Num y -> Num (of_bool (x <> 0 || y <> 0))
      (* algebraic identities that cannot change trap behaviour *)
      | Add_op, folded, Num 0 -> folded
      | Add_op, Num 0, folded -> folded
      | Sub_op, folded, Num 0 -> folded
      | Mul_op, folded, Num 1 -> folded
      | Mul_op, Num 1, folded -> folded
      | op, l, r -> Binop (op, l, r))

let rec stmt = function
  | Assign (name, e) -> Assign (name, expr e)
  | Assign_sub (name, index, value) -> Assign_sub (name, expr index, expr value)
  | If (cond, t, e) -> If (expr cond, stmt t, Option.map stmt e)
  | While (cond, body) -> While (expr cond, stmt body)
  | For (v, start, dir, stop, body) -> For (v, expr start, dir, expr stop, stmt body)
  | Print e -> Print (expr e)
  | Printc e -> Printc (expr e)
  | Write _ as s -> s
  | Call_stmt (name, args) -> Call_stmt (name, List.map expr args)
  | Return e -> Return (Option.map expr e)
  | Block b -> Block (block b)
  | Skip -> Skip

and decl = function
  | Var_decl (name, init) -> Var_decl (name, Option.map expr init)
  | Array_decl _ as d -> d
  | Proc_decl (name, params, body) -> Proc_decl (name, params, block body)

and block b = { decls = List.map decl b.decls; stmts = List.map stmt b.stmts }

let program (p : program) = { p with body = block p.body }
