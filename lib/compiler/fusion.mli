(** Superoperator fusion — raising the semantic level of the DIR.

    The paper (§3.1–3.2) describes raising a representation's level by
    "increasing the complexity and variety of the opcodes".  This peephole
    pass rewrites common base-opcode sequences into the fused superoperators
    of {!Uhm_dir.Isa} ([Litadd], [Incvar], the compare-and-branch family,
    ...), shortening the instruction stream at the price of a larger
    semantic-routine set — exactly the trade the Figure-1 grid measures.

    Fusion never crosses a branch target (an instruction that can be entered
    from elsewhere keeps its identity), and all branch targets are remapped
    to the rewritten indices. *)

val fuse : Uhm_dir.Program.t -> Uhm_dir.Program.t
(** [fuse p] is an observationally equivalent program using superoperators.
    Idempotent: [fuse (fuse p)] = [fuse p]. *)

val rules_description : (string * string) list
(** [(pattern, replacement)] pairs for documentation and reports. *)
