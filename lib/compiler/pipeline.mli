(** Front-to-back compilation pipeline: source text or AST → DIR program. *)

val compile : ?fold:bool -> ?fuse:bool -> Uhm_hlr.Ast.program -> Uhm_dir.Program.t
(** [compile p] checks and compiles [p].  [fold] (default [true]) applies
    constant folding; [fuse] (default [false]) applies superoperator fusion.
    Raises {!Uhm_hlr.Check.Check_error} or {!Codegen.Codegen_error}. *)

val compile_source : ?name:string -> ?fold:bool -> ?fuse:bool -> string
  -> Uhm_dir.Program.t
(** [compile_source src] parses, checks and compiles Algol-S source text. *)
