let compile ?(fold = true) ?(fuse = false) ast =
  let ast = Uhm_hlr.Check.check_exn ast in
  let ast = if fold then Const_fold.program ast else ast in
  let dir = Codegen.compile ast in
  if fuse then Fusion.fuse dir else dir

let compile_source ?(name = "<source>") ?fold ?fuse source =
  compile ?fold ?fuse (Uhm_hlr.Parser.parse ~name source)
