(** Constant folding over Algol-S expressions.

    The paper notes (§3.1) that a compiler targeting a representation far
    from the HLR tends to forgo local optimisation; this mild fold is the
    "local optimisation" knob used by the ablation benches.  Folding
    preserves run-time semantics exactly: division or modulus by a constant
    zero is left unfolded so the trap still fires at the right moment, and
    all arithmetic uses the same native [int] operations as the
    interpreters. *)

val expr : Uhm_hlr.Ast.expr -> Uhm_hlr.Ast.expr
val program : Uhm_hlr.Ast.program -> Uhm_hlr.Ast.program
