(** The campaign journal: an append-only JSON-lines record of a grid
    campaign's progress, durable across SIGKILL.

    Layout: line 1 is a header
    [{"uhm_journal":1,"campaign":...,"fingerprint":...,"cells":N}]
    identifying the exact grid (so a resume can refuse a journal written
    for different axes); every following line is one cell record, either

    [{"cell":i,"attempts":k,"status":"ok","digest":D,"payload":H}]

    with [H] the hex-encoded [Marshal] payload of the cell's result and
    [D] its MD5 (verified on load), or

    [{"cell":i,"attempts":k,"status":"quarantined","reason":R}].

    Appends are flushed and [fsync]'d one line at a time, so after a
    crash the file is a valid prefix plus at most one torn final line;
    {!load} drops the torn tail (that cell is recomputed on resume) and
    hard-errors on any {e interior} corruption.  A final line is torn
    whenever it lacks its trailing ['\n'] — even if the JSON itself
    survived intact — so the durable prefix always ends at a line
    boundary and appending to it can never glue two records together.

    The journal is deliberately free of timestamps and host identity:
    re-running the same campaign writes byte-identical headers, and the
    payload bytes are exactly what the grid returned, so resume can
    reproduce a byte-identical report.

    Payloads are read back with [Marshal.from_string]; a journal is only
    meaningful to the binary (version) that wrote it.  The fingerprint
    should therefore include anything the payload layout depends on. *)

type header = {
  campaign : string;      (** campaign family, e.g. ["uhmc-mix"] *)
  fingerprint : string;   (** {!fingerprint} over the grid axes *)
  cells : int;            (** total cells in the grid *)
}

type outcome =
  | Ok_cell of string          (** marshalled result payload, raw bytes *)
  | Quarantined_cell of string (** quarantine reason *)

type record = { cell : int; attempts : int; outcome : outcome }

val fingerprint : string list -> string
(** Hex digest over the given axis descriptions (order-sensitive). *)

type writer
(** An open journal; appends are serialised by an internal mutex, so the
    sweep's cell hooks may call {!append} from any domain. *)

val create : path:string -> header -> writer
(** Truncate/create [path], write the header line, fsync. *)

val reopen : path:string -> valid_bytes:int -> writer
(** Reopen an existing journal for in-place resume: truncate to the
    durable prefix reported by {!load} (discarding any torn tail) and
    position for appending.  The header is already in the prefix.  If
    the prefix does not end in a newline (never the case for a prefix
    reported by {!load}) the missing terminator is written and fsync'd
    first, so an append can never merge with the previous line. *)

val append : writer -> record -> unit
(** Append one record line, flush, fsync.  Thread-safe. *)

val close : writer -> unit
(** Final fsync and close.  Idempotent. *)

type loaded = {
  l_header : header;
  l_records : record list;
      (** in file order; a cell may appear more than once (a resumed run
          re-records cells it recomputed) — last record wins *)
  l_valid_bytes : int;  (** length of the durable prefix *)
  l_torn : bool;        (** a partial final line was dropped *)
}

type load_error =
  | No_header of string
      (** the file is empty or its first line is torn: the crash happened
          before the header became durable, so nothing was recorded — a
          resume may safely start fresh *)
  | Corrupt of string
      (** a durable journal that cannot be trusted: malformed header,
          interior corruption, digest mismatch, or a record outside the
          declared grid — a resume must refuse it *)

val load_error_message : load_error -> string

val load : path:string -> (loaded, load_error) result
(** Read and validate a journal.  [Error] on: unreadable file, missing or
    malformed header, any corrupt record other than a torn final line, or
    a record whose cell index falls outside the header's grid.  A final
    record without its trailing newline is dropped as torn even when its
    JSON parses, so [l_valid_bytes] always ends at a line boundary. *)

(** Result of one {!compact} pass. *)
type compaction = {
  c_kept : int;        (** surviving records — one per recorded cell *)
  c_retired : int;     (** superseded records dropped *)
  c_valid_bytes : int; (** size of the compacted journal *)
}

val compact : path:string -> (compaction, load_error) result
(** Rewrite the journal keeping only the {e last} record of each cell —
    exactly the records a resume would use — in ascending cell order.  A
    long-lived campaign journal that has been resumed many times carries
    one superseded line per recomputed cell; compaction retires them.

    Resume semantics are unchanged: {!load} of the compacted journal
    folds to the same per-cell state (payloads, attempts, quarantines) as
    the original, so a resumed run produces a byte-identical report.
    Crash-safe: the compacted journal is written and fsync'd to a
    temporary file beside the original, then atomically renamed over it —
    a kill at any point leaves either the old journal or the complete new
    one.  A torn final line in the source is dropped, as on any load. *)
