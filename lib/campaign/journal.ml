(* Append-only JSON-lines campaign journal; see journal.mli.

   One line per durable fact: a header describing the campaign (so a
   resume can refuse a journal written for a different grid), then one
   record per completed cell.  Every append is flushed and fsync'd before
   the cell counts as complete, so after a SIGKILL the file is a valid
   prefix of the campaign plus at most one torn final line — which the
   loader drops (that cell is simply recomputed on resume). *)

module Perf = Uhm_core.Perf

type header = { campaign : string; fingerprint : string; cells : int }

type outcome =
  | Ok_cell of string          (* marshalled result payload, raw bytes *)
  | Quarantined_cell of string (* quarantine reason *)

type record = { cell : int; attempts : int; outcome : outcome }

let fingerprint parts =
  Digest.to_hex (Digest.string (String.concat "\x1f" parts))

(* -- Encoding ---------------------------------------------------------------- *)

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Journal.hex_decode: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Journal.hex_decode: not a hex digit"
  in
  String.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let header_line h =
  Printf.sprintf
    "{\"uhm_journal\":1,\"campaign\":\"%s\",\"fingerprint\":\"%s\",\"cells\":%d}"
    (json_escape h.campaign) (json_escape h.fingerprint) h.cells

let record_line r =
  match r.outcome with
  | Ok_cell payload ->
      Printf.sprintf
        "{\"cell\":%d,\"attempts\":%d,\"status\":\"ok\",\"digest\":\"%s\",\"payload\":\"%s\"}"
        r.cell r.attempts
        (Digest.to_hex (Digest.string payload))
        (hex_encode payload)
  | Quarantined_cell reason ->
      Printf.sprintf
        "{\"cell\":%d,\"attempts\":%d,\"status\":\"quarantined\",\"reason\":\"%s\"}"
        r.cell r.attempts (json_escape reason)

(* -- Decoding ---------------------------------------------------------------- *)

exception Bad_line of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad_line s)) fmt

let obj_of_line line =
  match Perf.parse_json line with
  | Perf.J_obj fields -> fields
  | _ -> fail "journal line is not a JSON object"
  | exception Perf.Json_error msg -> fail "bad JSON: %s" msg

let str_field fields k =
  match List.assoc_opt k fields with
  | Some (Perf.J_str s) -> s
  | _ -> fail "missing or non-string field %S" k

let int_field fields k =
  match List.assoc_opt k fields with
  | Some (Perf.J_num f) when Float.is_integer f -> int_of_float f
  | _ -> fail "missing or non-integer field %S" k

let header_of_line line =
  let fields = obj_of_line line in
  (match List.assoc_opt "uhm_journal" fields with
  | Some (Perf.J_num 1.) -> ()
  | _ -> fail "not a uhm_journal v1 header");
  {
    campaign = str_field fields "campaign";
    fingerprint = str_field fields "fingerprint";
    cells = int_field fields "cells";
  }

let record_of_line line =
  let fields = obj_of_line line in
  let cell = int_field fields "cell" in
  let attempts = int_field fields "attempts" in
  match str_field fields "status" with
  | "ok" ->
      let payload =
        try hex_decode (str_field fields "payload")
        with Invalid_argument msg -> fail "cell %d: %s" cell msg
      in
      let digest = str_field fields "digest" in
      if Digest.to_hex (Digest.string payload) <> digest then
        fail "cell %d: payload digest mismatch (corrupt record)" cell;
      { cell; attempts; outcome = Ok_cell payload }
  | "quarantined" ->
      { cell; attempts; outcome = Quarantined_cell (str_field fields "reason") }
  | s -> fail "cell %d: unknown status %S" cell s

type loaded = {
  l_header : header;
  l_records : record list; (* file order; duplicates possible, last wins *)
  l_valid_bytes : int;     (* length of the durable prefix *)
  l_torn : bool;           (* a partial final line was dropped *)
}

(* Split [content] into (line, end_offset_incl_newline, complete) items.
   The final item is incomplete when the file does not end in '\n'. *)
let lines_with_offsets content =
  let n = String.length content in
  let out = ref [] in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if content.[i] = '\n' then begin
      out := (String.sub content !start (i - !start), i + 1, true) :: !out;
      start := i + 1
    end
  done;
  if !start < n then
    out := (String.sub content !start (n - !start), n, false) :: !out;
  List.rev !out

type load_error =
  | No_header of string (* empty or torn before the header became durable *)
  | Corrupt of string   (* a durable journal that cannot be trusted *)

let load_error_message = function No_header m | Corrupt m -> m

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      Error (Corrupt (Printf.sprintf "cannot read journal: %s" msg))
  | content -> (
      let items = lines_with_offsets content in
      match items with
      | [] -> Error (No_header "journal is empty (no complete header)")
      | (first, first_end, first_complete) :: rest -> (
          match header_of_line first with
          | exception Bad_line msg ->
              if (not first_complete) && rest = [] then
                Error
                  (No_header "journal has no complete header (torn at creation?)")
              else Error (Corrupt (Printf.sprintf "bad journal header: %s" msg))
          | _ when not first_complete ->
              (* the header JSON survived but its newline did not; the
                 prefix stops mid-line, and appending to it would glue
                 the first record onto the header.  Nothing durable was
                 recorded yet, so a fresh start loses nothing. *)
              Error
                (No_header
                   "journal header lacks its newline (torn at creation?)")
          | header ->
              let rec go acc valid torn = function
                | [] -> Ok (List.rev acc, valid, torn)
                | (line, line_end, complete) :: tail -> (
                    match record_of_line line with
                    | r when complete -> go (r :: acc) line_end torn tail
                    | _ ->
                        (* the record parses and digest-checks, but its
                           newline never reached the disk.  Keeping it
                           would leave the durable prefix stopping
                           mid-line, and the next append would glue two
                           records onto one line — interior corruption
                           on the following load.  Treat it like any
                           other torn tail: drop it, the cell is simply
                           recomputed on resume. *)
                        Ok (List.rev acc, valid, true)
                    | exception Bad_line msg ->
                        if (not complete) && tail = [] then
                          (* torn final line: drop it, the cell will be
                             recomputed on resume *)
                          Ok (List.rev acc, valid, true)
                        else
                          Error
                            (Corrupt
                               (Printf.sprintf "corrupt journal record: %s"
                                  msg)))
              in
              (match go [] first_end false rest with
              | Error _ as e -> e
              | Ok (records, valid, torn) ->
                  (* refuse records outside the declared grid *)
                  (match
                     List.find_opt
                       (fun r -> r.cell < 0 || r.cell >= header.cells)
                       records
                   with
                  | Some r ->
                      Error
                        (Corrupt
                           (Printf.sprintf
                              "journal record for cell %d outside grid of %d \
                               cells"
                              r.cell header.cells))
                  | None ->
                      Ok
                        {
                          l_header = header;
                          l_records = records;
                          l_valid_bytes = valid;
                          l_torn = torn;
                        }))))

(* -- Writer ------------------------------------------------------------------ *)

type writer = {
  w_oc : out_channel;
  w_fd : Unix.file_descr;
  w_mutex : Mutex.t;
  mutable w_closed : bool;
}

let sync w =
  flush w.w_oc;
  Unix.fsync w.w_fd

let writer_of_oc oc =
  { w_oc = oc; w_fd = Unix.descr_of_out_channel oc; w_mutex = Mutex.create ();
    w_closed = false }

let create ~path header =
  let oc = open_out_bin path in
  let w = writer_of_oc oc in
  output_string w.w_oc (header_line header);
  output_char w.w_oc '\n';
  sync w;
  w

let reopen ~path ~valid_bytes =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Unix.ftruncate fd valid_bytes;
  (* [load] only ever reports prefixes ending at a newline, but guard
     against a caller handing one that stops mid-line: appending to it
     verbatim would glue two records onto one line, which the next load
     rejects as interior corruption.  Terminate the line first. *)
  let needs_newline =
    valid_bytes > 0
    && begin
         ignore (Unix.lseek fd (valid_bytes - 1) Unix.SEEK_SET);
         let b = Bytes.create 1 in
         Unix.read fd b 0 1 = 1 && Bytes.get b 0 <> '\n'
       end
  in
  ignore (Unix.lseek fd valid_bytes Unix.SEEK_SET);
  let oc = Unix.out_channel_of_descr fd in
  let w = writer_of_oc oc in
  if needs_newline then begin
    output_char w.w_oc '\n';
    sync w
  end;
  w

let append w r =
  Mutex.lock w.w_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.w_mutex)
    (fun () ->
      if w.w_closed then invalid_arg "Journal.append: writer is closed";
      output_string w.w_oc (record_line r);
      output_char w.w_oc '\n';
      (* durable before the sweep may count the cell complete *)
      sync w)

let close w =
  Mutex.lock w.w_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.w_mutex)
    (fun () ->
      if not w.w_closed then begin
        w.w_closed <- true;
        (try sync w with Sys_error _ -> ());
        close_out_noerr w.w_oc
      end)

(* -- Compaction -------------------------------------------------------------- *)

type compaction = { c_kept : int; c_retired : int; c_valid_bytes : int }

let compact ~path =
  match load ~path with
  | Error _ as e -> e
  | Ok l ->
      (* last record per cell survives; emit in ascending cell order so
         compaction is deterministic (same journal in, same bytes out) *)
      let tbl : (int, record) Hashtbl.t = Hashtbl.create 64 in
      List.iter (fun r -> Hashtbl.replace tbl r.cell r) l.l_records;
      let survivors =
        List.sort
          (fun a b -> compare a.cell b.cell)
          (Hashtbl.fold (fun _ r acc -> r :: acc) tbl [])
      in
      let kept = List.length survivors in
      let retired = List.length l.l_records - kept in
      (* write the compacted journal beside the original, fsync it, then
         atomically rename over the original: a kill at any point leaves
         either the old journal or the complete new one, never a mix *)
      let tmp = path ^ ".compact" in
      let w = create ~path:tmp l.l_header in
      List.iter (append w) survivors;
      close w;
      Sys.rename tmp path;
      (* make the rename itself durable *)
      (match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
      | fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      let valid_bytes = (Unix.stat path).Unix.st_size in
      Ok { c_kept = kept; c_retired = retired; c_valid_bytes = valid_bytes }
