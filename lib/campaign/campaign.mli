(** Crash-safe campaigns: wire a {!Journal} to a supervised sweep.

    [prepare] resolves the [--journal]/[--resume] pair for one grid
    campaign and hands back exactly the two closures
    {!Uhm_core.Sweep.map_pool_supervised} wants:

    - [cached i] serves cell [i] from the resume journal (deserialised
      with [Marshal]); the sweep then skips recomputing it.  Cells whose
      last journal record is a quarantine are {e not} served — a resume
      retries them.
    - [cell_hook] appends one fsync'd record per freshly computed cell,
      so at any kill point the journal holds every completed cell.

    Safety: the journal header carries the campaign name, the cell count
    and a fingerprint over the grid axes.  Any mismatch raises
    {!Mismatch} — a resume can never silently mix cells from two
    different configurations into one report.  A corrupt journal
    (interior damage, malformed header) also raises {!Mismatch}.  Two
    crash shapes are recovered automatically instead: a torn {e final}
    record line is dropped (that cell is recomputed), and a file whose
    {e header} never became durable — the kill landed inside journal
    creation, before anything was recorded — is treated as a fresh
    start.

    Journal payloads are [Marshal]-encoded: a journal is only meaningful
    to the binary that wrote it.  Include anything the result layout
    depends on in the [fingerprint] parts. *)

exception Mismatch of string
(** The resume journal cannot be used for this run (wrong campaign,
    wrong axes, wrong fingerprint, or corrupt).  CLI callers map this to
    exit code 2 (malformed input). *)

type 'b setup = {
  cached : int -> 'b option;
      (** serve a cell from the resume journal, if recorded ok *)
  cell_hook : (index:int -> attempts:int -> 'b Uhm_core.Sweep.slot -> unit) option;
      (** journal append hook; [None] when no [--journal] was given *)
  close : unit -> unit;
      (** final fsync + close of the journal (idempotent, safe with no
          journal) *)
  resumed : int;
      (** cells that will be served from the resume journal *)
}

val default_compact_threshold : int
(** Retired-record count past which an in-place resume compacts first. *)

val prepare :
  ?journal:string ->
  ?resume:string ->
  ?compact_threshold:int ->
  campaign:string ->
  fingerprint:string list ->
  cells:int ->
  unit ->
  'b setup
(** [prepare ~journal ~resume ~campaign ~fingerprint ~cells ()]:

    - [resume]: load this journal and serve its ok cells via [cached].
      A non-existent file is a fresh start (with a stderr note), so a
      campaign can be launched with [--journal f --resume f]
      unconditionally and re-run until it completes.
    - [journal]: record this run.  When it is the same path as [resume],
      the file is truncated to its durable prefix and appended in place;
      otherwise a fresh journal is written, seeded with the reusable
      cells of the resume journal so it is self-contained.
    - [compact_threshold] (default {!default_compact_threshold}): on an
      in-place resume, when at least this many superseded records have
      accumulated (cells recorded more than once across earlier resumes),
      the journal is first compacted via {!Journal.compact}.  Resume
      state is unaffected; compaction failure only skips the compaction.

    Raises {!Mismatch} as described above.  The ['b] must be the cell
    result type of the grid this campaign runs — the same [prepare]
    result must not be shared between grids of different cell types. *)
