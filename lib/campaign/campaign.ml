(* Glue between the journal and the supervised sweep; see campaign.mli. *)

module Sweep = Uhm_core.Sweep

exception Mismatch of string

type 'b setup = {
  cached : int -> 'b option;
  cell_hook : (index:int -> attempts:int -> 'b Sweep.slot -> unit) option;
  close : unit -> unit;
  resumed : int;
}

let mismatch fmt = Printf.ksprintf (fun s -> raise (Mismatch s)) fmt

let check_header ~campaign ~fp ~cells (h : Journal.header) =
  if h.Journal.campaign <> campaign then
    mismatch
      "journal was written by campaign %S, this run is %S — refusing to mix"
      h.Journal.campaign campaign;
  if h.Journal.cells <> cells then
    mismatch
      "journal covers a grid of %d cells, this run has %d — the axes \
       changed; refusing to mix"
      h.Journal.cells cells;
  if h.Journal.fingerprint <> fp then
    mismatch
      "journal fingerprint %s does not match this run's %s — the \
       configuration changed; refusing to mix"
      h.Journal.fingerprint fp

let default_compact_threshold = 64

let prepare ?journal ?resume ?(compact_threshold = default_compact_threshold)
    ~campaign ~fingerprint ~cells () =
  let fp = Journal.fingerprint fingerprint in
  let header = { Journal.campaign; fingerprint = fp; cells } in
  (* 1. load the resume journal, if any *)
  let loaded =
    match resume with
    | None -> None
    | Some path when not (Sys.file_exists path) ->
        Printf.eprintf
          "uhm campaign: note: resume journal %s does not exist; starting \
           fresh\n%!"
          path;
        None
    | Some path -> (
        match Journal.load ~path with
        | Error (Journal.No_header msg) ->
            (* the kill landed before the header fsync: nothing durable
               was lost, so treat the file like a missing one *)
            Printf.eprintf
              "uhm campaign: note: %s in %s; starting fresh\n%!" msg path;
            None
        | Error (Journal.Corrupt msg) ->
            mismatch "cannot resume from %s: %s" path msg
        | Ok l ->
            check_header ~campaign ~fp ~cells l.Journal.l_header;
            if l.Journal.l_torn then
              Printf.eprintf
                "uhm campaign: note: dropped a torn final record in %s; \
                 that cell will be recomputed\n%!"
                path;
            Some (path, l))
  in
  (* 2. fold the records, last-wins per cell; only ok cells are reusable
        (quarantined cells are retried on resume) *)
  let tbl : (int, int * string) Hashtbl.t = Hashtbl.create 64 in
  (match loaded with
  | None -> ()
  | Some (_, l) ->
      List.iter
        (fun (r : Journal.record) ->
          match r.Journal.outcome with
          | Journal.Ok_cell payload ->
              Hashtbl.replace tbl r.Journal.cell (r.Journal.attempts, payload)
          | Journal.Quarantined_cell _ -> Hashtbl.remove tbl r.Journal.cell)
        l.Journal.l_records);
  let resumed = Hashtbl.length tbl in
  (* 3. open the output journal *)
  let writer =
    match journal with
    | None -> None
    | Some path -> (
        match loaded with
        | Some (rpath, l) when rpath = path ->
            (* in-place resume: keep the durable prefix, drop any torn
               tail, append from there.  A journal resumed many times
               accumulates superseded records (one per recomputed cell);
               once enough have piled up, compact opportunistically —
               resume state is unchanged, only the retired lines go. *)
            let distinct =
              let seen = Hashtbl.create 64 in
              List.iter
                (fun (r : Journal.record) ->
                  Hashtbl.replace seen r.Journal.cell ())
                l.Journal.l_records;
              Hashtbl.length seen
            in
            let retired = List.length l.Journal.l_records - distinct in
            let valid_bytes =
              if retired < compact_threshold then l.Journal.l_valid_bytes
              else
                match Journal.compact ~path with
                | Ok c ->
                    Printf.eprintf
                      "uhm campaign: note: compacted %s (%d superseded \
                       record(s) retired, %d kept)\n%!"
                      path c.Journal.c_retired c.Journal.c_kept;
                    c.Journal.c_valid_bytes
                | Error e ->
                    (* the journal loaded fine a moment ago; a racing
                       writer or IO error is not worth failing the run
                       over — just skip compaction *)
                    Printf.eprintf
                      "uhm campaign: note: compaction of %s skipped: %s\n%!"
                      path (Journal.load_error_message e);
                    l.Journal.l_valid_bytes
            in
            Some (Journal.reopen ~path ~valid_bytes)
        | _ ->
            let w = Journal.create ~path header in
            (* replay the reusable cells so the new journal is
               self-contained *)
            List.iter
              (fun (cell, (attempts, payload)) ->
                Journal.append w
                  { Journal.cell; attempts; outcome = Journal.Ok_cell payload })
              (List.sort compare
                 (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []));
            Some w)
  in
  let cached i =
    match Hashtbl.find_opt tbl i with
    | Some (_, payload) -> Some (Marshal.from_string payload 0)
    | None -> None
  in
  let cell_hook =
    match writer with
    | None -> None
    | Some w ->
        Some
          (fun ~index ~attempts (slot : _ Sweep.slot) ->
            let outcome =
              match slot with
              | Sweep.Completed v -> Journal.Ok_cell (Marshal.to_string v [])
              | Sweep.Quarantined q -> Journal.Quarantined_cell q.Sweep.q_reason
            in
            Journal.append w { Journal.cell = index; attempts; outcome })
  in
  let close () = match writer with None -> () | Some w -> Journal.close w in
  { cached; cell_hook; close; resumed }
