(** The Algol-S benchmark suite.

    Seventeen programs spanning the behaviours the paper's analysis depends
    on: tight loops (high working-set locality, the DTB's best case), deep
    recursion with static-link traffic, array/indexing code, output-heavy
    code, branchy interpreter-like dispatch, and a deliberately low-locality
    straight-line program (the DTB's worst case).

    Every program is deterministic, self-contained (no input), terminates,
    and produces non-trivial output — the output is the oracle for the
    differential tests across all execution engines. *)

type entry = {
  name : string;
  description : string;
  source : string;
  loopiness : [ `Tight | `Mixed | `Flat ];
  (** qualitative locality class, used when reporting hit ratios *)
}

val all : entry list

val find : string -> entry
(** Raises [Not_found]. *)

val parse : entry -> Uhm_hlr.Ast.program
(** Parsed and checked. *)

val compile : ?fuse:bool -> entry -> Uhm_dir.Program.t

val names : unit -> string list
