(** Locality statistics over instruction-address traces.

    The DTB's whole premise is Denning's principle of locality (paper §4):
    "over any interval of time, the vast majority of memory references are
    concentrated on a small subset of the address space".  These functions
    quantify that for our workloads: working-set sizes, reuse distances and
    footprints, which EXPERIMENTS.md reports alongside the hit ratios that
    locality makes possible. *)

val footprint : int array -> int
(** Number of distinct addresses in the trace. *)

val working_set_sizes : window:int -> int array -> int array
(** [working_set_sizes ~window trace] is W(t, tau): for each position [t]
    (stepping by [window] for tractability), the number of distinct
    addresses among the previous [window] references. *)

val average_working_set : window:int -> int array -> float

val reuse_distances : int array -> int array
(** For each reference after the first occurrence of its address, the LRU
    stack distance (number of distinct addresses touched since the previous
    reference to the same address); cold references are excluded. *)

val hit_ratio_for_capacity : capacity:int -> int array -> float
(** Fraction of references whose reuse distance is below [capacity] — the
    hit ratio of a fully-associative LRU cache of that many entries (cold
    misses count as misses). *)

val trace_of_program : ?fuel:int -> Uhm_dir.Program.t -> int array
(** The dynamic instruction-index trace from the reference interpreter.
    Raises [Failure] if the program traps or exhausts [fuel]. *)
