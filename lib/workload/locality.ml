let footprint trace =
  let seen = Hashtbl.create 256 in
  Array.iter (fun a -> Hashtbl.replace seen a ()) trace;
  Hashtbl.length seen

let distinct_in trace lo hi =
  let seen = Hashtbl.create 64 in
  for i = lo to hi do
    Hashtbl.replace seen trace.(i) ()
  done;
  Hashtbl.length seen

let working_set_sizes ~window trace =
  if window <= 0 then invalid_arg "Locality.working_set_sizes: bad window";
  let n = Array.length trace in
  let points = ref [] in
  let t = ref window in
  while !t <= n do
    points := distinct_in trace (!t - window) (!t - 1) :: !points;
    t := !t + window
  done;
  Array.of_list (List.rev !points)

let average_working_set ~window trace =
  let sizes = working_set_sizes ~window trace in
  if Array.length sizes = 0 then 0.
  else
    float_of_int (Array.fold_left ( + ) 0 sizes)
    /. float_of_int (Array.length sizes)

(* LRU stack distances via a simple move-to-front list over distinct
   addresses; adequate for traces in the hundreds of thousands with the
   modest footprints of the suite. *)
let reuse_distances trace =
  let stack = ref [] in
  let out = ref [] in
  Array.iter
    (fun a ->
      let rec split depth acc = function
        | [] -> None
        | x :: rest when x = a -> Some (depth, List.rev_append acc rest)
        | x :: rest -> split (depth + 1) (x :: acc) rest
      in
      match split 0 [] !stack with
      | Some (depth, rest) ->
          out := depth :: !out;
          stack := a :: rest
      | None -> stack := a :: !stack)
    trace;
  Array.of_list (List.rev !out)

let hit_ratio_for_capacity ~capacity trace =
  if Array.length trace = 0 then 0.
  else begin
    let distances = reuse_distances trace in
    let hits =
      Array.fold_left (fun acc d -> if d < capacity then acc + 1 else acc) 0
        distances
    in
    float_of_int hits /. float_of_int (Array.length trace)
  end

let trace_of_program ?fuel p =
  let out = ref [] in
  let n = ref 0 in
  let r =
    Uhm_dir.Interp.run ?fuel
      ~on_step:(fun pc _ ->
        out := pc :: !out;
        incr n)
      p
  in
  (match r.Uhm_dir.Interp.status with
  | Uhm_dir.Interp.Halted -> ()
  | Uhm_dir.Interp.Trapped m -> failwith ("Locality.trace_of_program: " ^ m)
  | Uhm_dir.Interp.Out_of_fuel ->
      failwith "Locality.trace_of_program: out of fuel");
  let arr = Array.make !n 0 in
  List.iteri (fun i a -> arr.(!n - 1 - i) <- a) !out;
  arr
