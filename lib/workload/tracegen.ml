module Prng = struct
  type t = { mutable state : int }

  let create ~seed =
    (* avoid the all-zero state *)
    { state = (if seed = 0 then 0x1E3779B97F4A7C15 else seed) }

  (* xorshift64* (Vigna); masked to a non-negative OCaml int *)
  let next t =
    let s = t.state in
    let s = s lxor (s lsr 12) in
    let s = s lxor (s lsl 25) in
    let s = s lxor (s lsr 27) in
    t.state <- s;
    s * 0x2545F4914F6CDD1D land max_int

  let below t n =
    if n <= 0 then invalid_arg "Prng.below: non-positive bound";
    next t mod n

  let float t = float_of_int (next t) /. float_of_int max_int
end

type config = {
  code_size : int;
  loop_body : int;
  locality : float;
  length : int;
  seed : int;
}

let default =
  { code_size = 4096; loop_body = 12; locality = 0.95; length = 200_000;
    seed = 42 }

let generate cfg =
  if cfg.code_size <= 0 || cfg.length < 0 || cfg.loop_body <= 0 then
    invalid_arg "Tracegen.generate: bad config";
  let rng = Prng.create ~seed:cfg.seed in
  let trace = Array.make cfg.length 0 in
  (* current loop: start and length; position within it *)
  let loop_start = ref 0 in
  let loop_len = ref (min cfg.code_size cfg.loop_body) in
  let pos = ref 0 in
  let fresh_loop () =
    let len = 1 + Prng.below rng (2 * cfg.loop_body) in
    let len = min len cfg.code_size in
    loop_len := len;
    loop_start := Prng.below rng (cfg.code_size - len + 1);
    pos := 0
  in
  for i = 0 to cfg.length - 1 do
    trace.(i) <- !loop_start + !pos;
    if !pos + 1 < !loop_len then incr pos
    else if Prng.float rng < cfg.locality then pos := 0 (* loop back *)
    else fresh_loop ()
  done;
  trace
