type entry = {
  name : string;
  description : string;
  source : string;
  loopiness : [ `Tight | `Mixed | `Flat ];
}

let fib_rec =
  {
    name = "fib_rec";
    description = "naive recursive Fibonacci; call/return and frame traffic";
    loopiness = `Mixed;
    source =
      {|
begin
  procedure fib(n);
  begin
    if n < 2 then return n;
    return fib(n - 1) + fib(n - 2);
  end;
  integer i;
  for i := 0 to 18 do print fib(i);
end
|};
  }

let fact_iter =
  {
    name = "fact_iter";
    description = "iterative factorials; a single tight multiply loop";
    loopiness = `Tight;
    source =
      {|
begin
  integer n, acc, i;
  for n := 1 to 18 do
  begin
    acc := 1;
    for i := 2 to n do acc := acc * i;
    print acc;
  end;
end
|};
  }

let sieve =
  {
    name = "sieve";
    description = "sieve of Eratosthenes up to 400; array writes in nested loops";
    loopiness = `Tight;
    source =
      {|
begin
  integer array flags[401];
  integer i, j, count;
  for i := 2 to 400 do flags[i] := 1;
  i := 2;
  while i * i <= 400 do
  begin
    if flags[i] = 1 then
    begin
      j := i * i;
      while j <= 400 do
      begin
        flags[j] := 0;
        j := j + i;
      end;
    end;
    i := i + 1;
  end;
  count := 0;
  for i := 2 to 400 do
    if flags[i] = 1 then count := count + 1;
  print count;
  for i := 390 to 400 do
    if flags[i] = 1 then print i;
end
|};
  }

let bubble_sort =
  {
    name = "bubble_sort";
    description = "bubble sort of 48 LCG-generated values";
    loopiness = `Tight;
    source =
      {|
begin
  integer array a[48];
  integer i, j, t, seed;
  seed := 1234;
  for i := 0 to 47 do
  begin
    seed := (seed * 1103515245 + 12345) mod 32768;
    a[i] := seed;
  end;
  for i := 47 downto 1 do
    for j := 0 to i - 1 do
      if a[j] > a[j + 1] then
      begin
        t := a[j];
        a[j] := a[j + 1];
        a[j + 1] := t;
      end;
  for i := 0 to 47 do print a[i];
end
|};
  }

let quicksort =
  {
    name = "quicksort";
    description = "recursive quicksort over an outer-scope array; static links";
    loopiness = `Mixed;
    source =
      {|
begin
  integer array a[64];
  integer i, seed;
  procedure sort(lo, hi);
  begin
    integer p, l, r, t;
    if lo >= hi then return;
    p := a[(lo + hi) div 2];
    l := lo;
    r := hi;
    while l <= r do
    begin
      while a[l] < p do l := l + 1;
      while a[r] > p do r := r - 1;
      if l <= r then
      begin
        t := a[l]; a[l] := a[r]; a[r] := t;
        l := l + 1;
        r := r - 1;
      end;
    end;
    call sort(lo, r);
    call sort(l, hi);
    return;
  end;
  seed := 99;
  for i := 0 to 63 do
  begin
    seed := (seed * 1103515245 + 12345) mod 32768;
    a[i] := seed;
  end;
  call sort(0, 63);
  for i := 0 to 63 do print a[i];
end
|};
  }

let matmul =
  {
    name = "matmul";
    description = "8x8 integer matrix multiply with manual 1-D indexing";
    loopiness = `Tight;
    source =
      {|
begin
  integer array a[64];
  integer array b[64];
  integer array c[64];
  integer i, j, k, s;
  for i := 0 to 63 do
  begin
    a[i] := (i * 7) mod 13;
    b[i] := (i * 11) mod 17;
  end;
  for i := 0 to 7 do
    for j := 0 to 7 do
    begin
      s := 0;
      for k := 0 to 7 do
        s := s + a[i * 8 + k] * b[k * 8 + j];
      c[i * 8 + j] := s;
    end;
  s := 0;
  for i := 0 to 63 do s := s + c[i];
  print s;
  for i := 0 to 7 do print c[i * 9];
end
|};
  }

let gcd =
  {
    name = "gcd";
    description = "Euclid's algorithm over a grid of operand pairs";
    loopiness = `Tight;
    source =
      {|
begin
  procedure gcd(x, y);
  begin
    integer t;
    while y <> 0 do
    begin
      t := x mod y;
      x := y;
      y := t;
    end;
    return x;
  end;
  integer i, j, s;
  s := 0;
  for i := 1 to 30 do
    for j := 1 to 30 do
      s := s + gcd(i * 12, j * 18);
  print s;
  print gcd(1071, 462);
end
|};
  }

let hanoi =
  {
    name = "hanoi";
    description = "towers of Hanoi (10 discs); deep recursion, little data";
    loopiness = `Mixed;
    source =
      {|
begin
  integer moves;
  procedure move(n, src, dst, via);
  begin
    if n = 0 then return;
    call move(n - 1, src, via, dst);
    moves := moves + 1;
    if moves mod 100 = 0 then print src * 10 + dst;
    call move(n - 1, via, dst, src);
    return;
  end;
  moves := 0;
  call move(10, 1, 3, 2);
  print moves;
end
|};
  }

let ackermann =
  {
    name = "ackermann";
    description = "Ackermann(2, n); pathological call nesting";
    loopiness = `Mixed;
    source =
      {|
begin
  procedure ack(m, n);
  begin
    if m = 0 then return n + 1;
    if n = 0 then return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
  end;
  integer n;
  for n := 0 to 5 do print ack(2, n);
  print ack(3, 3);
end
|};
  }

let nested_scopes =
  {
    name = "nested_scopes";
    description = "four levels of procedure nesting; static-link walks";
    loopiness = `Mixed;
    source =
      {|
begin
  integer total := 0;
  procedure level1(a);
  begin
    integer x1 := a * 2;
    procedure level2(b);
    begin
      integer x2 := b + x1;
      procedure level3(c);
      begin
        integer x3 := c + x2 + x1;
        procedure level4(d);
        begin
          total := total + d + x3 + x2 + x1 + a;
          return 0;
        end;
        call level4(x3);
        return x3;
      end;
      return level3(x2) + level3(b);
    end;
    return level2(x1) + level2(a);
  end;
  integer i;
  for i := 1 to 25 do total := total + level1(i);
  print total;
end
|};
  }

let string_out =
  {
    name = "string_out";
    description = "output-heavy: banners and decimal digit printing";
    loopiness = `Mixed;
    source =
      {|
begin
  procedure digits(n);
  begin
    if n >= 10 then call digits(n div 10);
    printc 48 + (n mod 10);
    return 0;
  end;
  integer i;
  for i := 1 to 40 do
  begin
    write "line ";
    call digits(i);
    write ": ";
    call digits(i * i * i);
    printc 10;
  end;
end
|};
  }

let collatz =
  {
    name = "collatz";
    description = "Collatz step counts for 1..80; data-dependent branching";
    loopiness = `Tight;
    source =
      {|
begin
  integer n, x, steps;
  for n := 1 to 80 do
  begin
    x := n;
    steps := 0;
    while x <> 1 do
    begin
      if x mod 2 = 0 then x := x div 2;
      else x := 3 * x + 1;
      steps := steps + 1;
    end;
    print steps;
  end;
end
|};
  }

let binsearch =
  {
    name = "binsearch";
    description = "binary search over a sorted table, 300 probes";
    loopiness = `Tight;
    source =
      {|
begin
  integer array tab[128];
  integer i, q, lo, hi, mid, hits;
  for i := 0 to 127 do tab[i] := i * 3 + 1;
  hits := 0;
  for q := 0 to 299 do
  begin
    lo := 0;
    hi := 127;
    while lo <= hi do
    begin
      mid := (lo + hi) div 2;
      if tab[mid] = q then
      begin
        hits := hits + 1;
        lo := hi + 1;
      end
      else
        if tab[mid] < q then lo := mid + 1;
        else hi := mid - 1;
    end;
  end;
  print hits;
end
|};
  }

let dispatch =
  {
    name = "dispatch";
    description = "interpreter-like opcode dispatch loop over a code table";
    loopiness = `Tight;
    source =
      {|
begin
  integer array codes[64];
  integer i, pc, acc, op, fuel;
  for i := 0 to 63 do codes[i] := (i * 37 + 11) mod 7;
  acc := 1;
  pc := 0;
  fuel := 4000;
  while fuel > 0 do
  begin
    op := codes[pc];
    if op = 0 then acc := acc + 1;
    else if op = 1 then acc := acc * 2;
    else if op = 2 then acc := acc - 3;
    else if op = 3 then acc := acc mod 8191;
    else if op = 4 then pc := ((pc + acc) mod 64 + 64) mod 64;
    else if op = 5 then acc := acc * acc mod 8191;
    else acc := acc + op;
    pc := (pc + 1) mod 64;
    fuel := fuel - 1;
    if fuel mod 500 = 0 then print acc;
  end;
  print acc;
end
|};
  }

let loop_tight =
  {
    name = "loop_tight";
    description = "smallest possible hot loop; the DTB's best case";
    loopiness = `Tight;
    source =
      {|
begin
  integer i, s;
  s := 0;
  for i := 1 to 20000 do s := (s + i) mod 999983;
  print s;
end
|};
  }

let flat_straightline =
  {
    name = "flat_straightline";
    description =
      "long straight-line body executed twice; the DTB's worst case";
    loopiness = `Flat;
    source =
      (let buf = Buffer.create 4096 in
       Buffer.add_string buf "begin\n  integer pass, s;\n";
       Buffer.add_string buf "  for pass := 1 to 2 do\n  begin\n    s := pass;\n";
       for i = 0 to 199 do
         Buffer.add_string buf
           (Printf.sprintf "    s := (s * %d + %d) mod 65521;\n"
              ((i * 7 mod 11) + 2)
              ((i * 13 mod 97) + 1))
       done;
       Buffer.add_string buf "    print s;\n  end;\nend\n";
       Buffer.contents buf);
  }

let queens =
  {
    name = "queens";
    description = "count the 8-queens solutions by recursive backtracking";
    loopiness = `Mixed;
    source =
      {|
begin
  integer array col[8];
  integer solutions := 0;
  procedure safe(row, c);
  begin
    integer i, ok;
    ok := 1;
    for i := 0 to row - 1 do
    begin
      if col[i] = c then ok := 0;
      if col[i] - i = c - row then ok := 0;
      if col[i] + i = c + row then ok := 0;
    end;
    return ok;
  end;
  procedure place(row);
  begin
    integer c;
    if row = 8 then
    begin
      solutions := solutions + 1;
      return;
    end;
    for c := 0 to 7 do
      if safe(row, c) = 1 then
      begin
        col[row] := c;
        call place(row + 1);
      end;
    return;
  end;
  call place(0);
  print solutions;
end
|};
  }

let all =
  [
    fib_rec; fact_iter; sieve; bubble_sort; quicksort; matmul; gcd; hanoi;
    ackermann; nested_scopes; string_out; collatz; binsearch; dispatch;
    loop_tight; flat_straightline; queens;
  ]

let find name = List.find (fun e -> String.equal e.name name) all
let names () = List.map (fun e -> e.name) all

let parse e =
  Uhm_hlr.Check.check_exn (Uhm_hlr.Parser.parse ~name:e.name e.source)

let compile ?fuse e = Uhm_compiler.Pipeline.compile ?fuse (parse e)
