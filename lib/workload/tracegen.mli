(** Synthetic instruction-address traces with tunable locality.

    Used to chart DTB hit ratio against working-set size beyond what the
    program suite exercises (paper §4/§7: the hit ratio depends on the
    relation between DTB capacity and the working set).  The generator
    simulates a program of [code_size] instruction slots executing nested
    loops: at each step it either continues a loop body, re-enters the loop,
    or jumps to a fresh region — the mix is set by [locality] in [0, 1]
    (1 = a single tight loop, 0 = a uniform random walk).

    The PRNG is a self-contained xorshift64*, so traces are reproducible
    from the seed with no global state. *)

type config = {
  code_size : int;       (** distinct instruction addresses available *)
  loop_body : int;       (** mean loop-body length, instructions *)
  locality : float;      (** probability of staying in the current loop *)
  length : int;          (** trace length *)
  seed : int;
}

val default : config

val generate : config -> int array
(** Addresses in [0, code_size). *)

module Prng : sig
  type t

  val create : seed:int -> t
  val next : t -> int
  (** 62-bit non-negative pseudo-random value. *)

  val below : t -> int -> int
  val float : t -> float
  (** In [0, 1). *)
end
