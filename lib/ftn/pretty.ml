open Ast

(* precedence levels: OR 1, AND 2, NOT 3, relational 4, additive 5,
   multiplicative 6, unary minus 7, atoms 8 *)
let prec_of = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div -> 6
  | Mod -> 8 (* rendered as the MOD(a, b) intrinsic *)

let rec expr_prec level e =
  let atom = 8 in
  let text, prec =
    match e with
    | Num n when n < 0 -> (Printf.sprintf "(-%d)" (-n), atom)
    | Num n -> (string_of_int n, atom)
    | Var name -> (name, atom)
    | Element (name, index) ->
        (Printf.sprintf "%s(%s)" name (expr_prec 0 index), atom)
    | Funcall (name, args) ->
        ( Printf.sprintf "%s(%s)" name
            (String.concat ", " (List.map (expr_prec 0) args)),
          atom )
    | Binop (Mod, a, b) ->
        (Printf.sprintf "MOD(%s, %s)" (expr_prec 0 a) (expr_prec 0 b), atom)
    | Unop (Neg, e) -> (Printf.sprintf "-%s" (expr_prec 7 e), 7)
    | Unop (Not, e) -> (Printf.sprintf ".NOT. %s" (expr_prec 3 e), 3)
    | Binop (op, a, b) ->
        let p = prec_of op in
        let left, right =
          match op with
          | Or | And -> (p + 1, p)                     (* right-assoc parse *)
          | Eq | Ne | Lt | Le | Gt | Ge -> (p + 1, p + 1) (* non-assoc *)
          | _ -> (p, p + 1)                            (* left-assoc *)
        in
        ( Printf.sprintf "%s %s %s" (expr_prec left a) (binop_name op)
            (expr_prec right b),
          p )
  in
  if prec < level then "(" ^ text ^ ")" else text

let expr_to_string e = expr_prec 0 e

let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let line ?label text =
  match label with
  | Some l -> Printf.sprintf "%5d %s" l text
  | None -> "      " ^ text

let rec stmt_lines ?label s =
  match s with
  | Assign (name, e) -> [ line ?label (Printf.sprintf "%s = %s" name (expr_to_string e)) ]
  | Assign_element (name, index, value) ->
      [
        line ?label
          (Printf.sprintf "%s(%s) = %s" name (expr_to_string index)
             (expr_to_string value));
      ]
  | Goto l -> [ line ?label (Printf.sprintf "GOTO %d" l) ]
  | Continue -> [ line ?label "CONTINUE" ]
  | Call (name, []) -> [ line ?label (Printf.sprintf "CALL %s" name) ]
  | Call (name, args) ->
      [
        line ?label
          (Printf.sprintf "CALL %s(%s)" name
             (String.concat ", " (List.map expr_to_string args)));
      ]
  | Print e -> [ line ?label (Printf.sprintf "PRINT %s" (expr_to_string e)) ]
  | Print_string s -> [ line ?label (Printf.sprintf "PRINT %s" (quote_string s)) ]
  | Return -> [ line ?label "RETURN" ]
  | Stop -> [ line ?label "STOP" ]
  | If_simple (cond, inner) -> (
      match stmt_lines inner with
      | [ single ] ->
          [
            line ?label
              (Printf.sprintf "IF (%s) %s" (expr_to_string cond)
                 (String.trim single));
          ]
      | _ -> assert false (* the checker forbids nested control here *))
  | If_block (cond, then_body, else_body) ->
      [ line ?label (Printf.sprintf "IF (%s) THEN" (expr_to_string cond)) ]
      @ body_lines then_body
      @ (if else_body = [] then [] else (line "ELSE" :: body_lines else_body))
      @ [ line "ENDIF" ]
  | Do d ->
      let header =
        if d.step = 1 then
          Printf.sprintf "DO %d %s = %s, %s" d.terminal d.var
            (expr_to_string d.from_) (expr_to_string d.to_)
        else
          Printf.sprintf "DO %d %s = %s, %s, %d" d.terminal d.var
            (expr_to_string d.from_) (expr_to_string d.to_) d.step
      in
      line ?label header :: body_lines d.body

and body_lines (body : body) =
  List.concat_map (fun (label, s) -> stmt_lines ?label s) body

let decl_lines decls =
  List.map
    (fun d ->
      match d.dim with
      | None -> line (Printf.sprintf "INTEGER %s" d.dname)
      | Some n -> line (Printf.sprintf "INTEGER %s(%d)" d.dname n))
    decls

let unit_lines (u : unit_) =
  let header =
    match (u.kind, u.params) with
    | Program, _ -> Printf.sprintf "PROGRAM %s" u.uname
    | Subroutine, [] -> Printf.sprintf "SUBROUTINE %s" u.uname
    | Subroutine, ps ->
        Printf.sprintf "SUBROUTINE %s(%s)" u.uname (String.concat ", " ps)
    | Function, ps ->
        Printf.sprintf "FUNCTION %s(%s)" u.uname (String.concat ", " ps)
  in
  (line header :: decl_lines u.decls) @ body_lines u.body @ [ line "END" ]

let to_string (p : program) =
  String.concat "\n" (List.concat_map unit_lines p.units) ^ "\n"
