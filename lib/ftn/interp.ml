open Ast

type status =
  | Halted
  | Trapped of string
  | Out_of_fuel

type result = {
  status : status;
  output : string;
  steps : int;
}

exception Trap of string
exception Fuel
exception Goto_exc of int
exception Return_exc
exception Stop_exc

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type binding =
  | Cell of int ref
  | Arr of int array   (* index 1..n stored at slot i-1 *)

let default_fuel = 200_000_000

let run ?(fuel = default_fuel) (p : program) =
  let steps = ref 0 in
  let out = Buffer.create 256 in
  let tick () =
    incr steps;
    if !steps > fuel then raise Fuel
  in
  let units = Hashtbl.create 8 in
  List.iter (fun u -> Hashtbl.replace units u.uname u) p.units;
  let find_unit name = Hashtbl.find units name in

  let rec call_unit (u : unit_) (args : int list) =
    let env = Hashtbl.create 16 in
    (try List.iter2 (fun p v -> Hashtbl.replace env p (Cell (ref v))) u.params args
     with Invalid_argument _ -> trap "arity mismatch calling %s" u.uname);
    if u.kind = Function then Hashtbl.replace env u.uname (Cell (ref 0));
    List.iter
      (fun d ->
        match d.dim with
        | None ->
            if not (Hashtbl.mem env d.dname) then
              Hashtbl.replace env d.dname (Cell (ref 0))
        | Some n -> Hashtbl.replace env d.dname (Arr (Array.make n 0)))
      u.decls;
    (try exec_body u env u.body with
    | Return_exc -> ()
    | Goto_exc label -> trap "%s: GOTO %d escaped its unit" u.uname label);
    match u.kind with
    | Function -> (
        match Hashtbl.find env u.uname with
        | Cell r -> !r
        | Arr _ -> assert false)
    | Subroutine | Program -> 0

  and cell u env name =
    match Hashtbl.find_opt env name with
    | Some (Cell r) -> r
    | Some (Arr _) -> trap "%s: array %s used as a scalar" u.uname name
    | None -> trap "%s: undeclared %s" u.uname name

  and element u env name index =
    match Hashtbl.find_opt env name with
    | Some (Arr a) ->
        if index < 1 || index > Array.length a then
          trap "%s: subscript %d out of bounds for %s(%d)" u.uname index name
            (Array.length a);
        (a, index - 1)
    | Some (Cell _) | None -> trap "%s: %s is not an array" u.uname name

  and eval u env e =
    tick ();
    match e with
    | Num n -> n
    | Var name -> !(cell u env name)
    | Element (name, index_e) -> (
        (* a locally declared array wins; otherwise a unary function call *)
        match Hashtbl.find_opt env name with
        | Some (Arr _) ->
            let index = eval u env index_e in
            let a, slot = element u env name index in
            a.(slot)
        | Some (Cell _) | None ->
            call_unit (find_unit name) [ eval u env index_e ])
    | Funcall (name, args) ->
        call_unit (find_unit name) (List.map (eval u env) args)
    | Unop (Neg, e) -> -eval u env e
    | Unop (Not, e) -> if eval u env e = 0 then 1 else 0
    | Binop (op, a, b) -> (
        let x = eval u env a in
        let y = eval u env b in
        match op with
        | Add -> x + y
        | Sub -> x - y
        | Mul -> x * y
        | Div -> if y = 0 then trap "division by zero" else x / y
        | Mod -> if y = 0 then trap "division by zero" else x mod y
        | Eq -> if x = y then 1 else 0
        | Ne -> if x <> y then 1 else 0
        | Lt -> if x < y then 1 else 0
        | Le -> if x <= y then 1 else 0
        | Gt -> if x > y then 1 else 0
        | Ge -> if x >= y then 1 else 0
        | And -> if x <> 0 && y <> 0 then 1 else 0
        | Or -> if x <> 0 || y <> 0 then 1 else 0)

  (* Execute a statement list; a GOTO whose label lives in this list
     continues from that position, anything else propagates. *)
  and exec_body u env (body : body) =
    let items = Array.of_list body in
    let index_of label =
      let rec find i =
        if i >= Array.length items then None
        else if fst items.(i) = Some label then Some i
        else find (i + 1)
      in
      find 0
    in
    let i = ref 0 in
    while !i < Array.length items do
      let _, stmt = items.(!i) in
      (try
         exec u env stmt;
         incr i
       with Goto_exc label -> (
         match index_of label with
         | Some j -> i := j
         | None -> raise (Goto_exc label)))
    done

  and exec u env stmt =
    tick ();
    match stmt with
    | Assign (name, e) ->
        let v = eval u env e in
        cell u env name := v
    | Assign_element (name, index_e, value_e) ->
        let index = eval u env index_e in
        let value = eval u env value_e in
        let a, slot = element u env name index in
        a.(slot) <- value
    | Goto label -> raise (Goto_exc label)
    | If_simple (cond, s) -> if eval u env cond <> 0 then exec u env s
    | If_block (cond, t, e) ->
        if eval u env cond <> 0 then exec_body u env t else exec_body u env e
    | Do d ->
        let var = cell u env d.var in
        let from_ = eval u env d.from_ in
        let stop = eval u env d.to_ in
        var := from_;
        let continue_ () = if d.step > 0 then !var <= stop else !var >= stop in
        while continue_ () do
          tick ();
          exec_body u env d.body;
          var := !var + d.step
        done
    | Continue -> ()
    | Call (name, args) ->
        ignore (call_unit (find_unit name) (List.map (eval u env) args))
    | Print e ->
        Buffer.add_string out (string_of_int (eval u env e));
        Buffer.add_char out '\n'
    | Print_string text ->
        Buffer.add_string out text;
        Buffer.add_char out '\n'
    | Return -> raise Return_exc
    | Stop -> raise Stop_exc
  in
  let main = List.find (fun u -> u.kind = Program) p.units in
  let status =
    try
      ignore (call_unit main []);
      Halted
    with
    | Stop_exc -> Halted
    | Trap msg -> Trapped msg
    | Fuel -> Out_of_fuel
  in
  { status; output = Buffer.contents out; steps = !steps }

let run_output ?fuel p =
  let r = run ?fuel p in
  match r.status with
  | Halted -> r.output
  | Trapped msg -> failwith (Printf.sprintf "%s: trapped: %s" p.pname msg)
  | Out_of_fuel -> failwith (Printf.sprintf "%s: out of fuel" p.pname)
