(** Parser for Fortran-S.

    A program is a sequence of units, each terminated by [END]:
    {v
    PROGRAM name | SUBROUTINE name(params) | FUNCTION name(params)
      INTEGER decls                      declarations first
      statements                         one per line, optional label
    END
    v}

    Statements: assignment (scalar or array element), [GOTO label],
    logical [IF (e) stmt], block [IF (e) THEN ... (ELSE ...) ENDIF],
    [DO label var = e1, e2 (, step)] with a literal step, [CONTINUE],
    [CALL name(args)], [PRINT e], [PRINT 'text'], [RETURN], [STOP].

    Expressions use FORTRAN operators ([+ - * /], [.EQ.] .. [.GE.],
    [.AND.], [.OR.], [.NOT.], unary [-]) plus the [MOD(a, b)] intrinsic;
    [name(e)] is an array element or a function call, resolved by the
    checker and code generator from the declarations. *)

exception Parse_error of string * int
(** [(message, line number)] *)

val parse : ?name:string -> string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)
