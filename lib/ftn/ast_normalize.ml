(* Structural normalisation for the parse/print round-trip property:
   the printer renders negative literals as parenthesised negations (the
   lexer has no signed literals) and the parser reads any one-argument
   application as the [Element] form, so both spellings are identified
   here. *)

open Ast

let rec expr e =
  match e with
  | Num _ | Var _ -> e
  | Element (name, index) -> Element (name, expr index)
  | Funcall (name, [ single ]) -> Element (name, expr single)
  | Funcall (name, args) -> Funcall (name, List.map expr args)
  | Unop (Neg, inner) -> (
      match expr inner with
      | Num n -> Num (-n)
      | inner -> Unop (Neg, inner))
  | Unop (op, inner) -> Unop (op, expr inner)
  | Binop (op, a, b) -> Binop (op, expr a, expr b)

let rec stmt = function
  | Assign (name, e) -> Assign (name, expr e)
  | Assign_element (name, i, v) -> Assign_element (name, expr i, expr v)
  | Goto _ as s -> s
  | If_simple (c, s) -> If_simple (expr c, stmt s)
  | If_block (c, t, e) -> If_block (expr c, body t, body e)
  | Do d ->
      Do { d with from_ = expr d.from_; to_ = expr d.to_; body = body d.body }
  | Continue -> Continue
  | Call (name, args) -> Call (name, List.map expr args)
  | Print e -> Print (expr e)
  | Print_string _ as s -> s
  | Return -> Return
  | Stop -> Stop

and body b = List.map (fun (label, s) -> (label, stmt s)) b

let unit_ u = { u with body = body u.body }
let normalize (p : program) = { p with units = List.map unit_ p.units }
