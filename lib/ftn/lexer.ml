type token =
  | Int of int
  | Name of string
  | Str of string
  | Dotted of string
  | Punct of char

type line = {
  label : int option;
  tokens : token list;
  lineno : int;
}

exception Lex_error of string * int

let token_to_string = function
  | Int n -> string_of_int n
  | Name s -> s
  | Str s -> Printf.sprintf "'%s'" s
  | Dotted s -> Printf.sprintf ".%s." s
  | Punct c -> String.make 1 c

let dotted_words =
  [ "EQ"; "NE"; "LT"; "LE"; "GT"; "GE"; "AND"; "OR"; "NOT" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c = '_'

let tokenize_line lineno text =
  let error msg = raise (Lex_error (msg, lineno)) in
  let n = String.length text in
  let pos = ref 0 in
  let tokens = ref [] in
  let peek () = if !pos < n then Some text.[!pos] else None in
  while !pos < n do
    let c = text.[!pos] in
    if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '!' then pos := n (* trailing comment *)
    else if is_digit c then begin
      let start = !pos in
      while (match peek () with Some d -> is_digit d | None -> false) do
        incr pos
      done;
      match int_of_string_opt (String.sub text start (!pos - start)) with
      | Some v -> tokens := Int v :: !tokens
      | None -> error "integer literal too large"
    end
    else if is_alpha c then begin
      let start = !pos in
      while
        (match peek () with
        | Some d -> is_alpha d || is_digit d
        | None -> false)
      do
        incr pos
      done;
      tokens :=
        Name (String.uppercase_ascii (String.sub text start (!pos - start)))
        :: !tokens
    end
    else if c = '.' then begin
      (* .WORD. *)
      let start = !pos + 1 in
      let stop = ref start in
      while (!stop < n && text.[!stop] <> '.') do
        incr stop
      done;
      if !stop >= n then error "unterminated dotted operator";
      let word = String.uppercase_ascii (String.sub text start (!stop - start)) in
      if not (List.mem word dotted_words) then
        error (Printf.sprintf "unknown operator .%s." word);
      tokens := Dotted word :: !tokens;
      pos := !stop + 1
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec scan () =
        if !pos >= n then error "unterminated string"
        else if text.[!pos] = '\'' then
          if !pos + 1 < n && text.[!pos + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2;
            scan ()
          end
          else incr pos
        else begin
          Buffer.add_char buf text.[!pos];
          incr pos;
          scan ()
        end
      in
      scan ();
      tokens := Str (Buffer.contents buf) :: !tokens
    end
    else
      match c with
      | '=' | '+' | '-' | '*' | '/' | '(' | ')' | ',' ->
          tokens := Punct c :: !tokens;
          incr pos
      | _ -> error (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

let tokenize source =
  let raw = String.split_on_char '\n' source in
  let out = ref [] in
  List.iteri
    (fun i text ->
      let lineno = i + 1 in
      let trimmed = String.trim text in
      let is_comment =
        String.length text > 0
        && (match text.[0] with 'C' | 'c' | '*' | '!' -> true | _ -> false)
        (* a line starting with a name like CALL is not a comment; FORTRAN
           fixed-form comments put the marker in column one followed by a
           space or the rest of the marker line *)
        && (String.length text = 1
           || text.[1] = ' '
           || text.[0] = '*'
           || text.[0] = '!')
      in
      if String.length trimmed = 0 || is_comment then ()
      else begin
        match tokenize_line lineno text with
        | [] -> ()
        | Int label :: rest when rest <> [] ->
            out := { label = Some label; tokens = rest; lineno } :: !out
        | tokens -> out := { label = None; tokens; lineno } :: !out
      end)
    raw;
  List.rev !out
