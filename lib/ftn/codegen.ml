open Ast
module Isa = Uhm_dir.Isa
module Program = Uhm_dir.Program
module Emitter = Uhm_compiler.Emitter

exception Codegen_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

type slot =
  | S_scalar of int
  | S_array of int * int (* offset, dimension *)

type unit_state = {
  u : unit_;
  ctx_id : int;
  depth : int;
  entry : int;                       (* emitter label of the unit's entry *)
  slots : (string, slot) Hashtbl.t;
  labels : (int, int) Hashtbl.t;     (* FORTRAN label -> emitter label *)
  mutable next_offset : int;
}

let emitter_label st em label =
  match Hashtbl.find_opt st.labels label with
  | Some l -> l
  | None ->
      let l = Emitter.new_label em in
      Hashtbl.replace st.labels label l;
      l

let alloc st n =
  let offset = st.next_offset in
  st.next_offset <- offset + n;
  offset

let make_unit_state em ~ctx_id ~depth (u : unit_) =
  let st =
    {
      u;
      ctx_id;
      depth;
      entry = Emitter.new_label em;
      slots = Hashtbl.create 16;
      labels = Hashtbl.create 16;
      next_offset = 0;
    }
  in
  List.iter (fun p -> Hashtbl.replace st.slots p (S_scalar (alloc st 1))) u.params;
  (if u.kind = Function then
     Hashtbl.replace st.slots u.uname (S_scalar (alloc st 1)));
  List.iter
    (fun d ->
      match d.dim with
      | None ->
          if not (Hashtbl.mem st.slots d.dname) then
            Hashtbl.replace st.slots d.dname (S_scalar (alloc st 1))
      | Some n -> Hashtbl.replace st.slots d.dname (S_array (alloc st n, n)))
    u.decls;
  st

type st = {
  em : Emitter.t;
  units : (string, unit_state) Hashtbl.t;
}

let scalar_offset st name =
  match Hashtbl.find_opt st.slots name with
  | Some (S_scalar off) -> off
  | Some (S_array _) -> error "%s: array %s used as a scalar" st.u.uname name
  | None -> error "%s: no slot for %s" st.u.uname name

let array_offset st name =
  match Hashtbl.find_opt st.slots name with
  | Some (S_array (off, _)) -> off
  | Some (S_scalar _) -> error "%s: scalar %s subscripted" st.u.uname name
  | None -> error "%s: no slot for %s" st.u.uname name

let emit g i = ignore (Emitter.emit g.em i)

let rec compile_expr g ust e =
  match e with
  | Num n -> emit g (Isa.instr ~a:n Isa.Lit)
  | Var name -> emit g (Isa.instr ~a:0 ~b:(scalar_offset ust name) Isa.Load)
  | Element (name, index) -> (
      (* a locally declared array wins; otherwise a unary function call *)
      match Hashtbl.find_opt ust.slots name with
      | Some (S_array (off, _)) ->
          (* 1-based array element: address = base + (index - 1) *)
          emit g (Isa.instr ~a:0 ~b:off Isa.Addr);
          compile_expr g ust index;
          emit g (Isa.instr ~a:1 Isa.Lit);
          emit g (Isa.instr Isa.Sub);
          emit g (Isa.instr Isa.Index);
          emit g (Isa.instr Isa.Loadi)
      | Some (S_scalar _) | None -> compile_call g ust name [ index ])
  | Funcall (name, args) -> compile_call g ust name args
  | Unop (Neg, e) ->
      compile_expr g ust e;
      emit g (Isa.instr Isa.Neg)
  | Unop (Not, e) ->
      compile_expr g ust e;
      emit g (Isa.instr Isa.Not)
  | Binop (op, a, b) ->
      compile_expr g ust a;
      compile_expr g ust b;
      let opcode =
        match op with
        | Add -> Isa.Add
        | Sub -> Isa.Sub
        | Mul -> Isa.Mul
        | Div -> Isa.Div
        | Mod -> Isa.Mod
        | Eq -> Isa.Eq
        | Ne -> Isa.Ne
        | Lt -> Isa.Lt
        | Le -> Isa.Le
        | Gt -> Isa.Gt
        | Ge -> Isa.Ge
        | And -> Isa.And
        | Or -> Isa.Or
      in
      emit g (Isa.instr opcode)

and compile_call g ust name args =
  let callee =
    match Hashtbl.find_opt g.units name with
    | Some callee -> callee
    | None -> error "%s: unknown unit %s" ust.u.uname name
  in
  List.iter (compile_expr g ust) args;
  (* subprograms belong to the program scope (depth 0): the static link is
     the current frame from the main program, one hop from a subprogram *)
  Emitter.emit_ref g.em Isa.Call ~field:Emitter.Field_a ~b:ust.depth
    callee.entry

let store_scalar g ust name =
  emit g (Isa.instr ~a:0 ~b:(scalar_offset ust name) Isa.Store)

let rec compile_stmt g ust stmt =
  match stmt with
  | Assign (name, e) ->
      compile_expr g ust e;
      store_scalar g ust name
  | Assign_element (name, index, value) ->
      emit g (Isa.instr ~a:0 ~b:(array_offset ust name) Isa.Addr);
      compile_expr g ust index;
      emit g (Isa.instr ~a:1 Isa.Lit);
      emit g (Isa.instr Isa.Sub);
      emit g (Isa.instr Isa.Index);
      compile_expr g ust value;
      emit g (Isa.instr Isa.Storei)
  | Goto label ->
      Emitter.emit_ref g.em Isa.Jump ~field:Emitter.Field_a
        (emitter_label ust g.em label)
  | If_simple (cond, s) ->
      let skip = Emitter.new_label g.em in
      compile_expr g ust cond;
      Emitter.emit_ref g.em Isa.Jz ~field:Emitter.Field_a skip;
      compile_stmt g ust s;
      Emitter.place_label g.em skip
  | If_block (cond, then_body, else_body) ->
      let l_else = Emitter.new_label g.em in
      compile_expr g ust cond;
      Emitter.emit_ref g.em Isa.Jz ~field:Emitter.Field_a l_else;
      compile_body g ust then_body;
      if else_body = [] then Emitter.place_label g.em l_else
      else begin
        let l_end = Emitter.new_label g.em in
        (if Emitter.reachable g.em then
           Emitter.emit_ref g.em Isa.Jump ~field:Emitter.Field_a l_end);
        Emitter.place_label g.em l_else;
        compile_body g ust else_body;
        Emitter.place_label g.em l_end
      end
  | Do d ->
      let bound = alloc ust 1 in
      let l_loop = Emitter.new_label g.em in
      let l_end = Emitter.new_label g.em in
      compile_expr g ust d.from_;
      store_scalar g ust d.var;
      compile_expr g ust d.to_;
      emit g (Isa.instr ~a:0 ~b:bound Isa.Store);
      Emitter.place_label g.em l_loop;
      compile_expr g ust (Var d.var);
      emit g (Isa.instr ~a:0 ~b:bound Isa.Load);
      emit g (Isa.instr (if d.step > 0 then Isa.Le else Isa.Ge));
      Emitter.emit_ref g.em Isa.Jz ~field:Emitter.Field_a l_end;
      compile_body g ust d.body;
      (if Emitter.reachable g.em then begin
         compile_expr g ust (Var d.var);
         emit g (Isa.instr ~a:d.step Isa.Lit);
         emit g (Isa.instr Isa.Add);
         store_scalar g ust d.var;
         Emitter.emit_ref g.em Isa.Jump ~field:Emitter.Field_a l_loop
       end);
      Emitter.place_label g.em l_end
  | Continue -> ()
  | Call (name, args) ->
      compile_call g ust name args;
      emit g (Isa.instr Isa.Drop)
  | Print e ->
      compile_expr g ust e;
      emit g (Isa.instr Isa.Print)
  | Print_string text ->
      String.iter
        (fun ch ->
          emit g (Isa.instr ~a:(Char.code ch) Isa.Lit);
          emit g (Isa.instr Isa.Printc))
        text;
      emit g (Isa.instr ~a:10 Isa.Lit);
      emit g (Isa.instr Isa.Printc)
  | Return -> compile_return g ust
  | Stop -> emit g (Isa.instr Isa.Halt)

and compile_return g ust =
  (match ust.u.kind with
  | Function ->
      emit g (Isa.instr ~a:0 ~b:(scalar_offset ust ust.u.uname) Isa.Load)
  | Subroutine -> emit g (Isa.instr ~a:0 Isa.Lit)
  | Program -> error "RETURN in the PROGRAM unit");
  emit g (Isa.instr Isa.Ret)

and compile_body g ust (body : body) =
  List.iter
    (fun (label, stmt) ->
      (match label with
      | Some l -> Emitter.place_label g.em (emitter_label ust g.em l)
      | None -> ());
      compile_stmt g ust stmt)
    body

let compile_subprogram g ust =
  let em = g.em in
  em.Emitter.current_ctx <- ust.ctx_id;
  Emitter.place_label em ust.entry;
  let nargs = List.length ust.u.params in
  let enter_idx =
    Emitter.emit em (Isa.instr ~a:nargs ~b:0 ~c:ust.ctx_id Isa.Enter)
  in
  compile_body g ust ust.u.body;
  (if Emitter.reachable em then compile_return g ust);
  Emitter.patch_b em enter_idx (ust.next_offset - nargs);
  em.Emitter.current_ctx <- 0

let compile (p : program) =
  let em = Emitter.create () in
  let g = { em; units = Hashtbl.create 8 } in
  let subprograms = List.filter (fun u -> u.kind <> Program) p.units in
  let main_unit = List.find (fun u -> u.kind = Program) p.units in
  let states =
    List.mapi
      (fun i u -> make_unit_state em ~ctx_id:(i + 1) ~depth:1 u)
      subprograms
  in
  let main_state = make_unit_state em ~ctx_id:0 ~depth:0 main_unit in
  List.iter (fun ust -> Hashtbl.replace g.units ust.u.uname ust) states;
  Hashtbl.replace g.units main_state.u.uname main_state;
  List.iter (compile_subprogram g) states;
  Emitter.place_label em main_state.entry;
  compile_body g main_state main_state.u.body;
  (if Emitter.reachable em then ignore (Emitter.emit em (Isa.instr Isa.Halt)));
  let code, contour_map = Emitter.finish em in
  let contour_of (ust : unit_state) =
    {
      Program.id = ust.ctx_id;
      name = ust.u.uname;
      depth = ust.depth;
      n_args = List.length ust.u.params;
      n_locals = ust.next_offset - List.length ust.u.params;
      max_offset = max 0 (ust.next_offset - 1);
    }
  in
  let contours = Array.make (List.length states + 1) (contour_of main_state) in
  List.iter (fun ust -> contours.(ust.ctx_id) <- contour_of ust) states;
  let entry =
    (* the label resolves to the first main instruction *)
    match Emitter.resolve_label em main_state.entry with
    | Some a -> a
    | None -> error "main entry label unresolved"
  in
  Program.validate_exn
    (Program.make ~contour_map ~name:p.pname ~code ~entry ~contours ())

let compile_source ?(name = "<fortran>") ?(fuse = false) source =
  let ast = Check.check_exn (Parser.parse ~name source) in
  let dir = compile ast in
  if fuse then Uhm_compiler.Fusion.fuse dir else dir
