(* Fortran-S benchmark programs: the second language running on the same
   universal host.  Deliberately idiomatic FORTRAN — labels, GOTO, counted
   DO loops — producing DIR profiles unlike the Algol-S suite's. *)

type entry = {
  name : string;
  description : string;
  source : string;
}

let euclid =
  {
    name = "ftn_euclid";
    description = "GOTO-driven Euclid's algorithm over a grid of pairs";
    source =
      {|
      PROGRAM EUCLID
      INTEGER I, J, S
      S = 0
      DO 30 I = 1, 25
      DO 20 J = 1, 25
      S = S + IGCD(I * 12, J * 18)
   20 CONTINUE
   30 CONTINUE
      PRINT S
      PRINT IGCD(1071, 462)
      STOP
      END

      FUNCTION IGCD(A, B)
      INTEGER T
   10 IF (B .EQ. 0) GOTO 20
      T = MOD(A, B)
      A = B
      B = T
      GOTO 10
   20 IGCD = A
      RETURN
      END
|};
  }

let sieve =
  {
    name = "ftn_sieve";
    description = "sieve of Eratosthenes with DO loops and a logical IF";
    source =
      {|
      PROGRAM SIEVE
      INTEGER FLAGS(300)
      INTEGER I, J, N
      DO 10 I = 1, 300
      FLAGS(I) = 1
   10 CONTINUE
      DO 30 I = 2, 17
      IF (FLAGS(I) .EQ. 0) GOTO 30
      J = I * I
   20 IF (J .GT. 300) GOTO 30
      FLAGS(J) = 0
      J = J + I
      GOTO 20
   30 CONTINUE
      N = 0
      DO 40 I = 2, 300
      IF (FLAGS(I) .EQ. 1) N = N + 1
   40 CONTINUE
      PRINT N
      STOP
      END
|};
  }

let pascal =
  {
    name = "ftn_pascal";
    description = "Pascal's triangle rows via an array, nested DO loops";
    source =
      {|
      PROGRAM PASCAL
      INTEGER ROW(16)
      INTEGER I, J, N
      N = 14
      ROW(1) = 1
      DO 30 I = 1, N
      J = I + 1
   10 IF (J .LT. 2) GOTO 20
      ROW(J) = ROW(J) + ROW(J - 1)
      J = J - 1
      GOTO 10
   20 PRINT ROW(I + 1)
   30 CONTINUE
      STOP
      END
|};
  }

let fib =
  {
    name = "ftn_fib";
    description = "recursive Fibonacci function (an extension of F77)";
    source =
      {|
      PROGRAM FIBM
      INTEGER I
      DO 10 I = 0, 16
      PRINT IFIB(I)
   10 CONTINUE
      STOP
      END

      FUNCTION IFIB(N)
      IF (N .LT. 2) THEN
        IFIB = N
      ELSE
        IFIB = IFIB(N - 1) + IFIB(N - 2)
      ENDIF
      RETURN
      END
|};
  }

let banner =
  {
    name = "ftn_banner";
    description = "subroutine calls and string output";
    source =
      {|
      PROGRAM BANNER
      INTEGER I
      PRINT 'FORTRAN-S ON THE UHM'
      DO 10 I = 1, 5
      CALL LINE(I)
   10 CONTINUE
      STOP
      END

      SUBROUTINE LINE(N)
      INTEGER K
      PRINT 'COUNTDOWN'
      DO 10 K = N, 1, -1
      PRINT K * K
   10 CONTINUE
      RETURN
      END
|};
  }

let all = [ euclid; sieve; pascal; fib; banner ]

let find name = List.find (fun e -> String.equal e.name name) all

let parse e = Check.check_exn (Parser.parse ~name:e.name e.source)

let compile ?(fuse = false) e =
  let dir = Codegen.compile (parse e) in
  if fuse then Uhm_compiler.Fusion.fuse dir else dir
