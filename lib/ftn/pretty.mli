(** Pretty-printer for Fortran-S.

    Emits reparseable fixed-ish-form source: statement labels in the label
    field, six-space continuation-free statement lines, upper-case keywords.
    For every checked program [p], [Parser.parse (to_string p)] equals [p]
    up to {!Ast_normalize.normalize} (negative literals reparse as negated
    positives, and one-argument calls as the [Element] form). *)

val expr_to_string : Ast.expr -> string
val to_string : Ast.program -> string
