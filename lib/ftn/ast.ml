(* Abstract syntax of Fortran-S, the second HLR of this reproduction.

   The paper's premise (§1.2) is a host for an open-ended set of
   {e dissimilar} languages; Fortran-S is deliberately unlike Algol-S:
   flat program units instead of nested procedures, numeric statement
   labels with GOTO instead of structured control only, counted DO loops
   with a terminating label, 1-based arrays, and functions that return by
   assigning to their own name.  Both front ends compile to the same DIR
   and run unchanged on every machine strategy. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod      (* the MOD(a, b) intrinsic *)
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
[@@deriving eq, show { with_path = false }]

type unop =
  | Neg
  | Not
[@@deriving eq, show { with_path = false }]

type expr =
  | Num of int
  | Var of string
  | Element of string * expr        (* 1-based array element *)
  | Funcall of string * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
[@@deriving eq, show { with_path = false }]

type stmt =
  | Assign of string * expr
  | Assign_element of string * expr * expr
  | Goto of int
  | If_simple of expr * stmt            (* logical IF: IF (e) stmt *)
  | If_block of expr * body * body      (* IF (e) THEN ... [ELSE ...] ENDIF *)
  | Do of do_loop
  | Continue
  | Call of string * expr list
  | Print of expr
  | Print_string of string
  | Return
  | Stop

and do_loop = {
  terminal : int;       (* the DO label: the loop runs through the statement
                           carrying this label, inclusive *)
  var : string;
  from_ : expr;
  to_ : expr;
  step : int;           (* a non-zero literal; defaults to 1 *)
  body : body;          (* includes the terminal statement *)
}

and body = (int option * stmt) list   (* optional statement label *)
[@@deriving eq, show { with_path = false }]

type unit_kind =
  | Program
  | Subroutine
  | Function
[@@deriving eq, show { with_path = false }]

type decl = {
  dname : string;
  dim : int option;     (* [Some n]: an array of n elements, indexed 1..n *)
}
[@@deriving eq, show { with_path = false }]

type unit_ = {
  kind : unit_kind;
  uname : string;
  params : string list;
  decls : decl list;
  body : body;
}
[@@deriving eq, show { with_path = false }]

type program = {
  pname : string;
  units : unit_ list;
}
[@@deriving eq, show { with_path = false }]

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "MOD"
  | Eq -> ".EQ."
  | Ne -> ".NE."
  | Lt -> ".LT."
  | Le -> ".LE."
  | Gt -> ".GT."
  | Ge -> ".GE."
  | And -> ".AND."
  | Or -> ".OR."
