open Ast

exception Check_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Check_error s)) fmt

type sym =
  | Scalar
  | Array of int
  | Unit_sym of unit_kind * int (* arity *)

let max_dim = 1_000_000

(* Symbols visible inside one unit.  Locals (params, declarations, a
   FUNCTION's own result variable) shadow unit names for plain variable
   references; applying a locally-scalar name that is globally a unary
   FUNCTION is a call — the classic FORTRAN resolution, needed for
   recursion through the function's own name. *)
type tables = {
  locals : (string, sym) Hashtbl.t;
  globals : (string, sym) Hashtbl.t;
}

let unit_symbols (units : unit_ list) (u : unit_) =
  let globals = Hashtbl.create 32 in
  List.iter
    (fun other ->
      if Hashtbl.mem globals other.uname then
        error "duplicate unit name %s" other.uname;
      Hashtbl.replace globals other.uname
        (Unit_sym (other.kind, List.length other.params)))
    units;
  let locals = Hashtbl.create 32 in
  let declare name sym =
    if Hashtbl.mem locals name then
      error "%s: duplicate declaration of %s" u.uname name
    else Hashtbl.replace locals name sym
  in
  List.iter (fun p -> declare p Scalar) u.params;
  (if u.kind = Function && not (Hashtbl.mem locals u.uname) then
     Hashtbl.replace locals u.uname Scalar);
  List.iter
    (fun d ->
      match d.dim with
      | None -> if not (Hashtbl.mem locals d.dname) then declare d.dname Scalar
      | Some n ->
          if n <= 0 || n > max_dim then
            error "%s: array %s has invalid dimension %d" u.uname d.dname n;
          declare d.dname (Array n))
    u.decls;
  { locals; globals }

let find _u table name =
  match Hashtbl.find_opt table.locals name with
  | Some sym -> Some sym
  | None -> Hashtbl.find_opt table.globals name

let find_exn u table name =
  match find u table name with
  | Some sym -> sym
  | None -> error "%s: undeclared name %s" u.uname name

let find_unit_sym u table name =
  match Hashtbl.find_opt table.globals name with
  | Some (Unit_sym _ as sym) -> Some sym
  | _ ->
      ignore u;
      None

let rec check_expr u table = function
  | Num _ -> ()
  | Var name -> (
      match find_exn u table name with
      | Scalar -> ()
      | Array _ -> error "%s: array %s used without a subscript" u.uname name
      | Unit_sym _ -> error "%s: unit %s used as a variable" u.uname name)
  | Element (name, index) -> (
      (* one-argument form: a locally declared array wins; otherwise the
         name must be a unary FUNCTION *)
      check_expr u table index;
      match Hashtbl.find_opt table.locals name with
      | Some (Array _) -> ()
      | Some Scalar | None -> (
          match find_unit_sym u table name with
          | Some (Unit_sym (Function, 1)) -> ()
          | Some (Unit_sym (Function, arity)) ->
              error "%s: function %s expects %d argument(s)" u.uname name arity
          | Some (Unit_sym (Subroutine, _)) ->
              error "%s: subroutine %s used in an expression" u.uname name
          | Some (Unit_sym (Program, _)) | Some Scalar | Some (Array _) ->
              error "%s: %s is neither an array nor a function" u.uname name
          | None -> error "%s: undeclared name %s" u.uname name)
      | Some (Unit_sym _) -> assert false)
  | Funcall (name, args) -> (
      List.iter (check_expr u table) args;
      match find_unit_sym u table name with
      | Some (Unit_sym (Function, arity)) ->
          if List.length args <> arity then
            error "%s: function %s expects %d argument(s), got %d" u.uname name
              arity (List.length args)
      | Some (Unit_sym (Subroutine, _)) ->
          error "%s: subroutine %s used in an expression" u.uname name
      | _ -> error "%s: %s is not a function" u.uname name)
  | Unop (_, e) -> check_expr u table e
  | Binop (_, a, b) ->
      check_expr u table a;
      check_expr u table b

let check_scalar u table name what =
  match find_exn u table name with
  | Scalar -> ()
  | Array _ -> error "%s: array %s used as %s" u.uname name what
  | Unit_sym _ -> error "%s: unit %s used as %s" u.uname name what

(* Collect all labels of a unit and detect duplicates. *)
let rec collect_labels u seen (body : body) =
  List.iter
    (fun (label, stmt) ->
      (match label with
      | Some l ->
          if List.mem l !seen then error "%s: duplicate label %d" u.uname l;
          seen := l :: !seen
      | None -> ());
      match stmt with
      | If_block (_, t, e) ->
          collect_labels u seen t;
          collect_labels u seen e
      | Do d -> collect_labels u seen d.body
      | If_simple (_, s) -> (
          match s with
          | Goto _ | Continue | Return | Stop | Call _ | Print _
          | Print_string _ | Assign _ | Assign_element _ ->
              ()
          | If_simple _ | If_block _ | Do _ ->
              error "%s: nested control in a logical IF" u.uname)
      | _ -> ())
    body

(* GOTO may only target a label of its own block or an enclosing one. *)
let rec check_stmts u table ~in_scope (body : body) =
  let here = List.filter_map fst body in
  let in_scope = here @ in_scope in
  List.iter
    (fun (_, stmt) -> check_stmt u table ~in_scope stmt)
    body

and check_stmt u table ~in_scope = function
  | Assign (name, e) ->
      check_scalar u table name "an assignment target";
      check_expr u table e
  | Assign_element (name, index, value) ->
      (match find_exn u table name with
      | Array _ -> ()
      | Scalar -> error "%s: scalar %s subscripted" u.uname name
      | Unit_sym _ -> error "%s: unit %s assigned" u.uname name);
      check_expr u table index;
      check_expr u table value
  | Goto label ->
      if not (List.mem label in_scope) then
        error "%s: GOTO %d targets a label not visible from here" u.uname label
  | If_simple (cond, s) ->
      check_expr u table cond;
      check_stmt u table ~in_scope s
  | If_block (cond, t, e) ->
      check_expr u table cond;
      check_stmts u table ~in_scope t;
      check_stmts u table ~in_scope e
  | Do d ->
      check_scalar u table d.var "a DO variable";
      check_expr u table d.from_;
      check_expr u table d.to_;
      if d.step = 0 then error "%s: DO step is zero" u.uname;
      check_stmts u table ~in_scope d.body;
      let terminal_here = List.exists (fun (l, _) -> l = Some d.terminal) d.body in
      if not terminal_here then
        error "%s: DO %d body does not end at its terminal label" u.uname
          d.terminal
  | Continue -> ()
  | Call (name, args) -> (
      match find_exn u table name with
      | Unit_sym (Subroutine, arity) ->
          if List.length args <> arity then
            error "%s: subroutine %s expects %d argument(s), got %d" u.uname
              name arity (List.length args);
          List.iter (check_expr u table) args
      | Unit_sym (Function, _) ->
          error "%s: CALL of function %s (use it in an expression)" u.uname name
      | Unit_sym (Program, _) -> error "%s: CALL of PROGRAM %s" u.uname name
      | Scalar | Array _ -> error "%s: %s is not a subroutine" u.uname name)
  | Print e -> check_expr u table e
  | Print_string _ -> ()
  | Return ->
      if u.kind = Program then
        error "%s: RETURN in the PROGRAM unit (use STOP)" u.uname
  | Stop -> ()

let check_unit units u =
  let table = unit_symbols units u in
  collect_labels u (ref []) u.body;
  check_stmts u table ~in_scope:[] u.body

let check (p : program) =
  try
    let programs = List.filter (fun u -> u.kind = Program) p.units in
    (match programs with
    | [ _ ] -> ()
    | [] -> error "no PROGRAM unit"
    | _ -> error "more than one PROGRAM unit");
    List.iter (check_unit p.units) p.units;
    Ok ()
  with Check_error msg -> Error msg

let check_exn p =
  match check p with
  | Ok () -> p
  | Error msg -> raise (Check_error (Printf.sprintf "%s: %s" p.pname msg))
