open Ast

exception Parse_error of string * int

let error lineno fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (s, lineno))) fmt

(* -- Expression parsing within one line ------------------------------------ *)

type cursor = {
  mutable toks : Lexer.token list;
  lineno : int;
}

let peek c = match c.toks with [] -> None | t :: _ -> Some t
let advance c = match c.toks with [] -> () | _ :: rest -> c.toks <- rest

let expect_punct c ch =
  match peek c with
  | Some (Lexer.Punct p) when p = ch -> advance c
  | Some t -> error c.lineno "expected '%c', found %s" ch (Lexer.token_to_string t)
  | None -> error c.lineno "expected '%c' at end of line" ch

let accept_punct c ch =
  match peek c with
  | Some (Lexer.Punct p) when p = ch ->
      advance c;
      true
  | _ -> false

let expect_name c =
  match peek c with
  | Some (Lexer.Name n) ->
      advance c;
      n
  | Some t -> error c.lineno "expected a name, found %s" (Lexer.token_to_string t)
  | None -> error c.lineno "expected a name at end of line"

let expect_int c =
  match peek c with
  | Some (Lexer.Int v) ->
      advance c;
      v
  | Some t -> error c.lineno "expected an integer, found %s" (Lexer.token_to_string t)
  | None -> error c.lineno "expected an integer at end of line"

let rec parse_or c =
  let lhs = parse_and c in
  match peek c with
  | Some (Lexer.Dotted "OR") ->
      advance c;
      Binop (Or, lhs, parse_or c)
  | _ -> lhs

and parse_and c =
  let lhs = parse_not c in
  match peek c with
  | Some (Lexer.Dotted "AND") ->
      advance c;
      Binop (And, lhs, parse_and c)
  | _ -> lhs

and parse_not c =
  match peek c with
  | Some (Lexer.Dotted "NOT") ->
      advance c;
      Unop (Not, parse_not c)
  | _ -> parse_rel c

and parse_rel c =
  let lhs = parse_additive c in
  let rel op =
    advance c;
    Binop (op, lhs, parse_additive c)
  in
  match peek c with
  | Some (Lexer.Dotted "EQ") -> rel Eq
  | Some (Lexer.Dotted "NE") -> rel Ne
  | Some (Lexer.Dotted "LT") -> rel Lt
  | Some (Lexer.Dotted "LE") -> rel Le
  | Some (Lexer.Dotted "GT") -> rel Gt
  | Some (Lexer.Dotted "GE") -> rel Ge
  | _ -> lhs

and parse_additive c =
  let rec loop lhs =
    if accept_punct c '+' then loop (Binop (Add, lhs, parse_multiplicative c))
    else if accept_punct c '-' then loop (Binop (Sub, lhs, parse_multiplicative c))
    else lhs
  in
  loop (parse_multiplicative c)

and parse_multiplicative c =
  let rec loop lhs =
    if accept_punct c '*' then loop (Binop (Mul, lhs, parse_unary c))
    else if accept_punct c '/' then loop (Binop (Div, lhs, parse_unary c))
    else lhs
  in
  loop (parse_unary c)

and parse_unary c =
  if accept_punct c '-' then Unop (Neg, parse_unary c) else parse_primary c

and parse_primary c =
  match peek c with
  | Some (Lexer.Int v) ->
      advance c;
      Num v
  | Some (Lexer.Punct '(') ->
      advance c;
      let e = parse_or c in
      expect_punct c ')';
      e
  | Some (Lexer.Name "MOD") ->
      advance c;
      expect_punct c '(';
      let a = parse_or c in
      expect_punct c ',';
      let b = parse_or c in
      expect_punct c ')';
      Binop (Mod, a, b)
  | Some (Lexer.Name name) ->
      advance c;
      if accept_punct c '(' then begin
        let args = parse_args c in
        match args with
        | [ single ] -> Element (name, single)
            (* single-argument form: array element or unary function call —
               disambiguated by the checker/code generator *)
        | args -> Funcall (name, args)
      end
      else Var name
  | Some t -> error c.lineno "expected an expression, found %s" (Lexer.token_to_string t)
  | None -> error c.lineno "expected an expression at end of line"

and parse_args c =
  if accept_punct c ')' then []
  else
    let rec loop acc =
      let e = parse_or c in
      if accept_punct c ',' then loop (e :: acc)
      else begin
        expect_punct c ')';
        List.rev (e :: acc)
      end
    in
    loop []

let end_of_line c =
  match peek c with
  | None -> ()
  | Some t -> error c.lineno "unexpected %s at end of statement" (Lexer.token_to_string t)

(* -- Statement and unit parsing --------------------------------------------- *)

type stream = {
  mutable lines : Lexer.line list;
}

let peek_line s = match s.lines with [] -> None | l :: _ -> Some l

let next_line s =
  match s.lines with
  | [] -> None
  | l :: rest ->
      s.lines <- rest;
      Some l

let line_starts_with (l : Lexer.line) word =
  match l.Lexer.tokens with
  | Lexer.Name w :: _ -> String.equal w word
  | _ -> false

(* Parse the in-line (simple) statement forms shared by full statements and
   the logical IF. *)
let rec parse_simple_stmt s c =
  match peek c with
  | Some (Lexer.Name "GOTO") ->
      advance c;
      let label = expect_int c in
      end_of_line c;
      Goto label
  | Some (Lexer.Name "CONTINUE") ->
      advance c;
      end_of_line c;
      Continue
  | Some (Lexer.Name "RETURN") ->
      advance c;
      end_of_line c;
      Return
  | Some (Lexer.Name "STOP") ->
      advance c;
      end_of_line c;
      Stop
  | Some (Lexer.Name "CALL") ->
      advance c;
      let name = expect_name c in
      let args = if accept_punct c '(' then parse_args c else [] in
      end_of_line c;
      Call (name, args)
  | Some (Lexer.Name "PRINT") -> (
      advance c;
      match peek c with
      | Some (Lexer.Str text) ->
          advance c;
          end_of_line c;
          Print_string text
      | _ ->
          let e = parse_or c in
          end_of_line c;
          Print e)
  | Some (Lexer.Name name) -> (
      advance c;
      ignore s;
      if accept_punct c '(' then begin
        let index = parse_or c in
        expect_punct c ')';
        expect_punct c '=';
        let value = parse_or c in
        end_of_line c;
        Assign_element (name, index, value)
      end
      else begin
        expect_punct c '=';
        let value = parse_or c in
        end_of_line c;
        Assign (name, value)
      end)
  | Some t -> error c.lineno "expected a statement, found %s" (Lexer.token_to_string t)
  | None -> error c.lineno "empty statement"

(* A full statement may additionally be a logical IF, a block IF or a DO. *)
and parse_stmt s (line : Lexer.line) =
  let c = { toks = line.Lexer.tokens; lineno = line.Lexer.lineno } in
  match peek c with
  | Some (Lexer.Name "IF") -> (
      advance c;
      expect_punct c '(';
      let cond = parse_or c in
      expect_punct c ')';
      match peek c with
      | Some (Lexer.Name "THEN") ->
          advance c;
          end_of_line c;
          let then_body =
            parse_body s ~stop:(fun l ->
                line_starts_with l "ELSE" || line_starts_with l "ENDIF")
          in
          let else_body =
            match next_line s with
            | Some l when line_starts_with l "ELSE" ->
                let b =
                  parse_body s ~stop:(fun l -> line_starts_with l "ENDIF")
                in
                (match next_line s with
                | Some l when line_starts_with l "ENDIF" -> ()
                | _ -> error line.Lexer.lineno "missing ENDIF");
                b
            | Some l when line_starts_with l "ENDIF" -> []
            | _ -> error line.Lexer.lineno "missing ELSE or ENDIF"
          in
          If_block (cond, then_body, else_body)
      | _ -> If_simple (cond, parse_simple_stmt s c))
  | Some (Lexer.Name "DO") ->
      advance c;
      let terminal = expect_int c in
      let var = expect_name c in
      expect_punct c '=';
      let from_ = parse_or c in
      expect_punct c ',';
      let to_ = parse_or c in
      let step =
        if accept_punct c ',' then
          if accept_punct c '-' then -expect_int c else expect_int c
        else 1
      in
      end_of_line c;
      if step = 0 then error line.Lexer.lineno "DO step must be non-zero";
      let body = parse_do_body s ~terminal ~lineno:line.Lexer.lineno in
      Do { terminal; var; from_; to_; step; body }
  | _ -> parse_simple_stmt s c

(* Statements until (not consuming) a stop line. *)
and parse_body s ~stop =
  let rec loop acc =
    match peek_line s with
    | None -> List.rev acc
    | Some l when stop l -> List.rev acc
    | Some _ -> (
        match next_line s with
        | None -> List.rev acc
        | Some l -> loop ((l.Lexer.label, parse_stmt s l) :: acc))
  in
  loop []

(* Statements through the terminally labelled one, inclusive. *)
and parse_do_body s ~terminal ~lineno =
  let rec loop acc =
    match next_line s with
    | None -> error lineno "DO %d never terminated" terminal
    | Some l ->
        let stmt = parse_stmt s l in
        let acc = (l.Lexer.label, stmt) :: acc in
        if l.Lexer.label = Some terminal then List.rev acc else loop acc
  in
  loop []

let parse_decls s =
  let rec loop acc =
    match peek_line s with
    | Some l when line_starts_with l "INTEGER" -> (
        match next_line s with
        | None -> assert false
        | Some l ->
            let c = { toks = List.tl l.Lexer.tokens; lineno = l.Lexer.lineno } in
            let rec names acc =
              let dname = expect_name c in
              let dim =
                if accept_punct c '(' then begin
                  let n = expect_int c in
                  expect_punct c ')';
                  Some n
                end
                else None
              in
              let acc = { dname; dim } :: acc in
              if accept_punct c ',' then names acc
              else begin
                end_of_line c;
                acc
              end
            in
            loop (names acc))
    | _ -> List.rev acc
  in
  loop []

let parse_unit s (header : Lexer.line) =
  let c = { toks = header.Lexer.tokens; lineno = header.Lexer.lineno } in
  let kind =
    match expect_name c with
    | "PROGRAM" -> Program
    | "SUBROUTINE" -> Subroutine
    | "FUNCTION" -> Function
    | other -> error header.Lexer.lineno "expected a unit header, found %s" other
  in
  let uname = expect_name c in
  let params =
    if accept_punct c '(' then
      if accept_punct c ')' then []
      else
        let rec loop acc =
          let p = expect_name c in
          if accept_punct c ',' then loop (p :: acc)
          else begin
            expect_punct c ')';
            List.rev (p :: acc)
          end
        in
        loop []
    else []
  in
  end_of_line c;
  (match kind with
  | Program when params <> [] ->
      error header.Lexer.lineno "PROGRAM takes no parameters"
  | _ -> ());
  let decls = parse_decls s in
  let body = parse_body s ~stop:(fun l -> line_starts_with l "END") in
  (match next_line s with
  | Some l
    when line_starts_with l "END" && List.length l.Lexer.tokens = 1 ->
      ()
  | Some l -> error l.Lexer.lineno "expected END"
  | None -> error header.Lexer.lineno "unit %s never ends" uname);
  { kind; uname; params; decls; body }

let parse ?(name = "<fortran>") source =
  let s = { lines = Lexer.tokenize source } in
  let rec units acc =
    match next_line s with
    | None -> List.rev acc
    | Some header -> units (parse_unit s header :: acc)
  in
  let units = units [] in
  (match units with
  | [] -> raise (Parse_error ("empty program", 1))
  | _ -> ());
  { pname = name; units }
