(** Line-oriented lexer for Fortran-S.

    Fortran-S keeps FORTRAN's line discipline: one statement per line, an
    optional numeric statement label at the start of the line, comment
    lines introduced by [C], [*] or [!] in column one, and blank lines
    ignored.  Names and keywords are case-insensitive (normalised to upper
    case); string literals use single quotes with [''] as the escape. *)

type token =
  | Int of int
  | Name of string            (** upper-cased identifier or keyword *)
  | Str of string
  | Dotted of string          (** relational/logical: EQ NE LT LE GT GE AND OR NOT *)
  | Punct of char             (** one of = + - * / ( ) , *)

type line = {
  label : int option;
  tokens : token list;
  lineno : int;               (** 1-based source line *)
}

exception Lex_error of string * int
(** [(message, line number)] *)

val tokenize : string -> line list
(** Comment and blank lines are dropped. *)

val token_to_string : token -> string
