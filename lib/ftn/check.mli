(** Static checking for Fortran-S.

    Enforced rules: exactly one [PROGRAM] unit; unit names unique;
    every name is a parameter, a declared local, the enclosing
    [FUNCTION]'s own name, or a visible unit; arrays are always
    subscripted with exactly one subscript and never called; scalars are
    never subscripted; [SUBROUTINE]s are only [CALL]ed and [FUNCTION]s only
    used in expressions, both with matching arity; [RETURN] appears only in
    subprograms; statement labels are unique within a unit; every [GOTO]
    targets a label in its own statement block or an enclosing one (no
    jumping {e into} a [DO] or [IF] body); [DO] variables are scalars;
    array dimensions are in [1 .. 1_000_000]. *)

exception Check_error of string

val check : Ast.program -> (unit, string) result
val check_exn : Ast.program -> Ast.program
