(** Reference interpreter for Fortran-S — the oracle for the differential
    tests: the compiled DIR (under every machine strategy) must reproduce
    this interpreter's output byte for byte.

    Semantics mirror the code generator exactly: arrays are 1-based and
    bounds-checked here (out-of-range subscripts are undefined at the DIR
    level, as in Algol-S); integer division truncates toward zero; the
    [MOD] intrinsic follows the dividend's sign; [DO] loops are pretest
    with the terminal statement inside the body; a [FUNCTION] returns the
    current value of its own name; [PRINT e] writes the decimal value and a
    newline, [PRINT 'text'] the text and a newline. *)

type status =
  | Halted
  | Trapped of string
  | Out_of_fuel

type result = {
  status : status;
  output : string;
  steps : int;
}

val run : ?fuel:int -> Ast.program -> result
(** Run a {e checked} program (default fuel: 200 million steps). *)

val run_output : ?fuel:int -> Ast.program -> string
(** Output of a clean run; raises [Failure] otherwise. *)
