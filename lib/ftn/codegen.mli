(** Code generation: checked Fortran-S → DIR.

    The same binding story as the Algol-S compiler (names to
    contour-relative slots, structure to sequential stack code), but the
    source shape is entirely different: the [PROGRAM] unit becomes contour
    0, every subprogram a depth-1 contour (so static links are trivial —
    exactly the "dissimilar language" contrast the paper's §1.1 discusses),
    statement labels map to emitter labels, [GOTO] to [Jump], and 1-based
    subscripts are rebased by emitted arithmetic (which the fusion pass
    turns into [litsub]).  Functions return the value of their own name;
    recursion is permitted (a deliberate extension of FORTRAN-77).

    Shares {!Uhm_compiler.Emitter} with the Algol-S code generator, so the
    no-fall-through-into-labels discipline holds here too. *)

exception Codegen_error of string

val compile : Ast.program -> Uhm_dir.Program.t
(** [compile p] translates a program that passed {!Check.check}. *)

val compile_source : ?name:string -> ?fuse:bool -> string -> Uhm_dir.Program.t
(** Parse, check, compile, and optionally apply superoperator fusion
    ([fuse] defaults to [false]). *)
