(* Exact nearest-rank order statistics via deterministic quickselect; see
   percentile.mli. *)

let swap a i j =
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t

(* Median-of-three pivot: deterministic, and immune to the sorted and
   reverse-sorted inputs that sink a fixed-end pivot. *)
let pivot_index a lo hi =
  let mid = lo + ((hi - lo) / 2) in
  let x = a.(lo) and y = a.(mid) and z = a.(hi) in
  if (x <= y && y <= z) || (z <= y && y <= x) then mid
  else if (y <= x && x <= z) || (z <= x && x <= y) then lo
  else hi

(* k-th smallest (0-indexed) of a.(lo..hi), destructively. *)
let rec select a lo hi k =
  if lo = hi then a.(lo)
  else begin
    let p = pivot_index a lo hi in
    swap a p hi;
    let pivot = a.(hi) in
    let store = ref lo in
    for i = lo to hi - 1 do
      if a.(i) < pivot then begin
        swap a i !store;
        incr store
      end
    done;
    swap a !store hi;
    if k = !store then a.(k)
    else if k < !store then select a lo (!store - 1) k
    else select a (!store + 1) hi k
  end

let nearest_rank data ~p =
  let n = Array.length data in
  if n = 0 then invalid_arg "Percentile.nearest_rank: empty data";
  if p <= 0. || p > 100. then
    invalid_arg "Percentile.nearest_rank: p must be in (0, 100]";
  let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
  let rank = min n (max 1 rank) in
  select (Array.copy data) 0 (n - 1) (rank - 1)

let summary samples =
  match samples with
  | [] -> (0, 0, 0)
  | _ ->
      let a = Array.of_list samples in
      ( nearest_rank a ~p:50.,
        nearest_rank a ~p:95.,
        nearest_rank a ~p:99. )
