(* Fault-tolerant serving: the chaos driver; see chaos.mli.

   The loop below is Serve.run's loop with PR 4's fault machinery
   (Injector / Guard / invalidate-retranslate / checkpoint rollback /
   watchdog downgrade, lifted from Resilient.run_encoded) threaded
   through each tenant, plus the service-level robustness policy: job
   deadlines, bounded retry with exponential backoff after a detected
   fault, and a staged brownout controller.  Every statement of the
   fault-free path mirrors Serve.run exactly — under the zero config
   (no faults, no deadline, no brownout) the run must be cycle- and
   trace-identical to Serve.run, which test/test_chaos.ml pins
   differentially.  Any divergence in the shared path is a regression
   against that pin. *)

module Machine = Uhm_machine.Machine
module Timing = Uhm_machine.Timing
module SF = Uhm_machine.Short_format
module R = Uhm_machine.Host_isa.Regs
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Codec = Uhm_encoding.Codec
module Layout = Uhm_psder.Layout
module Scheduler = Uhm_sched.Scheduler
module Trace = Uhm_sched.Trace
module Mix = Uhm_sched.Mix
module Injector = Uhm_fault.Injector
module Guard = Uhm_fault.Guard
module Resilient = Uhm_fault.Resilient

type brownout = {
  bo_window : int;
  bo_hi_detections : int;
  bo_hi_wait : int;
  bo_shed_above : int;
  bo_hysteresis : int;
  bo_quarantine : int;
}

let default_brownout =
  {
    bo_window = 200_000;
    bo_hi_detections = 8;
    bo_hi_wait = 400_000;
    bo_shed_above = 4;
    bo_hysteresis = 100_000;
    bo_quarantine = 250_000;
  }

type config = {
  c_fault : Resilient.config;
  c_job_retry_limit : int;
  c_job_backoff : int;
  c_deadline : int option;
  c_brownout : brownout option;
}

let zero =
  {
    c_fault = Resilient.zero;
    c_job_retry_limit = 2;
    c_job_backoff = 4096;
    c_deadline = None;
    c_brownout = None;
  }

type job_report = {
  cj_id : int;
  cj_attempts : int;
  cj_injected : int;
  cj_detected : int;
  cj_retries : int;
  cj_rollbacks : int;
  cj_downgraded : bool;
  cj_interp_admit : bool;
  cj_output : string;
  cj_arch_hash : int;
  cj_state_ok : bool;
}

type chaos_summary = {
  cs_slo_met : int;
  cs_slo_completed : int;
  cs_attainment : float;
  cs_goodput : float;
  cs_deadline_misses : int;
  cs_failed_jobs : int;
  cs_job_retries : int;
  cs_injected : int;
  cs_detected : int;
  cs_recovery_retries : int;
  cs_rollbacks : int;
  cs_downgrades : int;
  cs_interp_admits : int;
  cs_quarantines : int;
  cs_brownout_transitions : int;
  cs_max_stage : int;
}

type result = {
  cv_serve : Serve.result;
  cv_fconfig : config;
  cv_reports : job_report list;
  cv_summary : chaos_summary;
}

type solo_ref = { sr_status : Machine.status; sr_output : string; sr_arch_hash : int }

(* The fault-free solo run of one template: the reference every accepted
   completion is verified against ("never a wrong answer" made literal).
   Run through the same Resilient machinery at the never-preempt quantum,
   so status, output and arch fingerprint come from the identical
   execution semantics as the in-service attempt. *)
let solo_reference ?timing ?fuel ?layout ?backend ~config (name, encoded) =
  let r =
    Resilient.run_encoded ?timing ?fuel ?layout ?backend ~trace_capacity:16
      ~policy:Dtb.Flush_on_switch ~quantum:Mix.solo_quantum ~config
      ~fconfig:Resilient.zero
      [ (name, encoded) ]
  in
  match r.Resilient.rr_programs with
  | [ p ] ->
      {
        sr_status = p.Resilient.pr_status;
        sr_output = p.Resilient.pr_output;
        sr_arch_hash = p.Resilient.pr_arch_hash;
      }
  | _ -> assert false

type mode = Translating | Downgraded

(* Per-job bookkeeping that survives across attempts. *)
type jstate = {
  js_id : int;
  js_template : int;
  js_name : string;
  js_encoded : Codec.encoded;
  js_arrival : int;
  mutable js_attempts : int;
  mutable js_first_admit : int;
  mutable js_cycles : int;
  mutable js_injected : int;
  mutable js_detected : int;
  mutable js_retries : int;
  mutable js_rollbacks : int;
  mutable js_downgraded : bool;
  mutable js_interp_admit : bool;
  mutable js_output : string;
  mutable js_arch_hash : int;
  mutable js_state_ok : bool;
}

(* One attempt of one job bound to an ASID slot: Serve's tenant plus the
   Resilient proc state. *)
type tenant = {
  t_js : jstate;
  t_asid : int;
  t_interp0 : bool; (* admitted in pure-interpretation mode (stage 2) *)
  t_encoded : Codec.encoded;
  t_total_dir_steps : int;
  inj : Injector.t;
  guard : Guard.t;
  retries : (int, int) Hashtbl.t;
  watchdog : int Queue.t;
  mutable machine : Machine.t;
  mutable mode : mode;
  mutable translating : int option;
  mutable doomed : bool;
  mutable ck : Machine.checkpoint option;
  mutable ck_step : int;
  mutable outstanding : int list;
  mutable downgrade_pending : bool;
  mutable finished : Machine.status option;
  mutable out_prefix : string;
  mutable base_cycles : int;
  mutable injected : int;
  mutable detected : int;
  mutable retried : int;
  mutable rolled_back : int;
}

(* Keep in sync with Resilient.interp_cycles_per_dir: how many cycles one
   DIR instruction of pure interpretation is worth when slicing a
   downgraded machine. *)
let interp_cycles_per_dir = 64

let run ?(timing = Timing.paper) ?fuel ?(layout = Layout.default) ?backend
    ?(trace_capacity = 65536) ?(scheduler = Scheduler.Round_robin)
    ?(admission = Serve.default_admission) ?economy ~policy ~quantum ~config
    ~fconfig ~slots ~templates ~arrivals () =
  if templates = [] then invalid_arg "Chaos.run: no templates";
  if quantum < 1 then invalid_arg "Chaos.run: quantum must be >= 1";
  if slots < 1 then invalid_arg "Chaos.run: slots must be >= 1";
  if admission.Serve.queue_capacity < 1 then
    invalid_arg "Chaos.run: queue capacity must be >= 1";
  if fconfig.c_job_retry_limit < 0 then
    invalid_arg "Chaos.run: job retry limit must be >= 0";
  if fconfig.c_job_backoff < 0 then
    invalid_arg "Chaos.run: job backoff must be >= 0";
  (match fconfig.c_deadline with
  | Some d when d < 1 -> invalid_arg "Chaos.run: deadline must be >= 1"
  | _ -> ());
  let fc = fconfig.c_fault in
  let mem_faults = Injector.can_inject fc.Resilient.injector Injector.Mem_word in
  if mem_faults && fc.Resilient.checkpoint_every = None then
    invalid_arg "Chaos.run: Mem_word faults require checkpoint_every";
  (* end-state verification (and thus job retry) only arms when faults
     can actually fire: the zero-config run must be branch-for-branch the
     plain service *)
  let verify = not (Injector.is_zero fc.Resilient.injector) in
  let tmpl = Array.of_list templates in
  let arr = Array.of_list arrivals in
  let njobs = Array.length arr in
  Array.iteri
    (fun i (a : Arrival.arrival) ->
      if a.Arrival.template < 0 || a.Arrival.template >= Array.length tmpl
      then invalid_arg "Chaos.run: template index out of range";
      if i > 0 && a.Arrival.at < arr.(i - 1).Arrival.at then
        invalid_arg "Chaos.run: arrivals out of order")
    arr;
  let buffer_base = layout.Layout.dtb_buffer_base + 1 in
  let dtb = Dtb.create_shared ~policy ~programs:slots config ~buffer_base in
  let buffer_words = Dtb.buffer_words dtb in
  let trace = Trace.create ~capacity:trace_capacity () in
  let tell at kind = Trace.record trace ~at_cycle:at kind in
  let t_dtb = timing.Timing.t_dtb
  and t_guard = timing.Timing.t_guard
  and t2 = timing.Timing.t2 in
  let jobs : Serve.job option array = Array.make njobs None in
  let jstates =
    Array.mapi
      (fun i (a : Arrival.arrival) ->
        let name, encoded = tmpl.(a.Arrival.template) in
        {
          js_id = i;
          js_template = a.Arrival.template;
          js_name = name;
          js_encoded = encoded;
          js_arrival = a.Arrival.at;
          js_attempts = 0;
          js_first_admit = -1;
          js_cycles = 0;
          js_injected = 0;
          js_detected = 0;
          js_retries = 0;
          js_rollbacks = 0;
          js_downgraded = false;
          js_interp_admit = false;
          js_output = "";
          js_arch_hash = 0;
          js_state_ok = true;
        })
      arr
  in
  let queue : int Queue.t = Queue.create () in
  let active : tenant option array = Array.make slots None in
  let used = Array.make slots false in
  let next = ref 0 in
  let clock = ref 0 in
  let switches = ref 0 in
  let flushes0 = Dtb.flushes dtb in
  let last_index = ref (-1) in
  let max_depth = ref 0 in
  let evictions = ref 0 in
  let cold_evictions = ref 0 in
  let tagged_keys = policy <> Dtb.Flush_on_switch && slots > 1 in
  (* chaos-policy state *)
  let pending_retries : (int * int) list ref = ref [] in
  let insert_retry at id =
    let rec ins = function
      | [] -> [ (at, id) ]
      | (a, j) :: rest when (a, j) <= (at, id) -> (a, j) :: ins rest
      | rest -> (at, id) :: rest
    in
    pending_retries := ins !pending_retries
  in
  let stage = ref 0 in
  let bo_window : (int * int) Queue.t = Queue.create () in
  let calm_since = ref (-1) in
  let quarantined_until = Array.make slots 0 in
  let job_retries_n = ref 0 in
  let interp_admits_n = ref 0 in
  let quarantines_n = ref 0 in
  let deadline_misses_n = ref 0 in
  let bo_note at slot =
    match fconfig.c_brownout with
    | None -> ()
    | Some _ -> Queue.push (at, slot) bo_window
  in
  (* mid-slice virtual time, matching Serve.run's translation-hook
     arithmetic: clock at slice start plus what the current tenant has
     run since *)
  let slice_c0 = ref 0 in
  let vtime t =
    !clock + t.base_cycles + (Machine.stats t.machine).Machine.cycles
    - !slice_c0
  in
  let tell_v t kind = Trace.record trace ~at_cycle:(vtime t) kind in
  let solo_cache : (int, solo_ref) Hashtbl.t = Hashtbl.create 8 in
  let solo_of tidx =
    match Hashtbl.find_opt solo_cache tidx with
    | Some r -> r
    | None ->
        let r = solo_reference ~timing ?fuel ~layout ?backend ~config tmpl.(tidx) in
        Hashtbl.add solo_cache tidx r;
        r
  in

  let shed_job id (a : Arrival.arrival) =
    let name, _ = tmpl.(a.Arrival.template) in
    jobs.(id) <-
      Some
        {
          Serve.j_id = id;
          j_template = a.Arrival.template;
          j_name = name;
          j_arrival = a.Arrival.at;
          j_admit = -1;
          j_finish = -1;
          j_asid = -1;
          j_cycles = 0;
          j_queue_delay = 0;
          j_sojourn = 0;
          j_solo_cycles = 0;
          j_slowdown = 0.;
          j_status = Serve.Shed;
        }
  in

  let ingest () =
    while !next < njobs && arr.(!next).Arrival.at <= !clock do
      let id = !next in
      let a = arr.(id) in
      let depth = Queue.length queue in
      let shed =
        depth >= admission.Serve.queue_capacity
        || (match admission.Serve.shed_above with
           | Some threshold -> depth >= threshold
           | None -> false)
        ||
        (* brownout stage 1+: shed harder than the configured admission
           policy while the service is degraded *)
        match fconfig.c_brownout with
        | Some b when !stage >= 1 -> depth >= b.bo_shed_above
        | _ -> false
      in
      if shed then begin
        tell a.Arrival.at (Trace.Job_shed { job = id; depth });
        shed_job id a
      end
      else begin
        Queue.push id queue;
        let depth = depth + 1 in
        if depth > !max_depth then max_depth := depth;
        tell a.Arrival.at (Trace.Job_queued { job = id; depth })
      end;
      incr next
    done
  in

  let scrub_slot s =
    if used.(s) then
      if tagged_keys then begin
        let entries = Dtb.invalidate_asid dtb ~asid:s in
        if entries > 0 then begin
          incr evictions;
          tell !clock (Trace.Asid_evicted { asid = s; entries; cold = false })
        end
      end
      else if Dtb.current_asid dtb = s && Dtb.resident_entries dtb > 0 then begin
        let entries = Dtb.resident_entries dtb in
        Dtb.flush dtb;
        incr evictions;
        tell !clock (Trace.Asid_evicted { asid = s; entries; cold = false })
      end
  in

  let free_slot () =
    let rec scan s =
      if s = slots then None
      else if active.(s) = None && quarantined_until.(s) <= !clock then Some s
      else scan (s + 1)
    in
    scan 0
  in

  let recovery_event t ~step =
    Queue.push step t.watchdog;
    while
      (not (Queue.is_empty t.watchdog))
      && Queue.peek t.watchdog < step - fc.Resilient.watchdog_window
    do
      ignore (Queue.pop t.watchdog)
    done;
    if Queue.length t.watchdog >= fc.Resilient.watchdog_threshold then
      t.downgrade_pending <- true
  in

  (* One attempt's machinery: Resilient.run_encoded's make_proc, with the
     slot as the trace/DTB ASID and the injector stream derived from
     (job, attempt).  A re-run is a fresh machine with a monotonic step
     counter starting at 0, so it must be a fresh stream — and deriving
     per attempt also means a retry does not deterministically re-suffer
     the exact fault schedule that voided the previous attempt. *)
  let make_tenant ~slot ~interp0 (js : jstate) ~attempt =
    let stream_asid = (js.js_id * 131) + (attempt - 1) in
    let inj = Injector.create fc.Resilient.injector ~asid:stream_asid in
    if interp0 then
      {
        t_js = js;
        t_asid = slot;
        t_interp0 = true;
        t_encoded = js.js_encoded;
        t_total_dir_steps = U.dir_steps_memoized js.js_encoded.Codec.program;
        inj;
        guard = Guard.create ();
        retries = Hashtbl.create 16;
        watchdog = Queue.create ();
        machine = U.prepare_interp ~timing ?fuel ~layout ?backend js.js_encoded;
        mode = Downgraded;
        translating = None;
        doomed = false;
        ck = None;
        ck_step = 0;
        outstanding = [];
        downgrade_pending = false;
        finished = None;
        out_prefix = "";
        base_cycles = 0;
        injected = 0;
        detected = 0;
        retried = 0;
        rolled_back = 0;
      }
    else begin
      let self = ref None in
      let t_of () = match !self with Some t -> t | None -> assert false in
      let apply_fault m (f : Injector.fault) =
        let t = t_of () in
        let applied =
          match f.Injector.f_class with
          | Injector.Dtb_tag ->
              Dtb.corrupt_resident_tag dtb ~pick:f.Injector.f_r1
                ~flip:f.Injector.f_r2
              <> None
          | Injector.Psder_word ->
              let addr = buffer_base + (f.Injector.f_r1 mod buffer_words) in
              Machine.poke m addr
                (Machine.peek m addr lxor (1 lsl (f.Injector.f_r2 mod 16)));
              true
          | Injector.Translator ->
              t.doomed <- true;
              true
          | Injector.Mem_word ->
              let base = layout.Layout.data_base in
              let dtop = Machine.reg m R.dtop in
              if dtop <= base then false
              else begin
                let addr = base + (f.Injector.f_r1 mod (dtop - base)) in
                Machine.poke m addr
                  (Machine.peek m addr lxor (1 lsl (f.Injector.f_r2 mod 31)));
                t.outstanding <- addr :: t.outstanding;
                true
              end
        in
        if applied then begin
          t.injected <- t.injected + 1;
          tell_v t
            (Trace.Fault_injected
               { asid = t.t_asid;
                 fclass = Injector.class_name f.Injector.f_class })
        end
      in
      let start_translation m ~translator_entry ~dir_addr ~dctx =
        let t = t_of () in
        tell_v t (Trace.Translation { asid = t.t_asid; dir_addr });
        if fc.Resilient.guards then begin
          Guard.begin_install t.guard;
          Machine.add_cycles m t_guard
        end;
        t.translating <- Some dir_addr;
        Dtb.begin_translation dtb ~tag:dir_addr;
        Machine.set_reg m R.dpc dir_addr;
        Machine.set_reg m R.dctx dctx;
        Machine.set_pc m (Machine.Long translator_entry)
      in
      let detect m ~translator_entry ~dir_addr ~dctx ~fclass ~checked_words =
        let t = t_of () in
        Machine.add_cycles m (t_guard * max 1 checked_words);
        t.detected <- t.detected + 1;
        tell_v t (Trace.Fault_detected { asid = t.t_asid; fclass });
        bo_note (vtime t) t.t_asid;
        let step = (Machine.stats m).Machine.interp_count in
        recovery_event t ~step;
        let attempts =
          1 + Option.value ~default:0 (Hashtbl.find_opt t.retries dir_addr)
        in
        Hashtbl.replace t.retries dir_addr attempts;
        if attempts > fc.Resilient.retry_limit then t.downgrade_pending <- true;
        Machine.add_cycles m
          (fc.Resilient.backoff_cycles * (1 lsl min (attempts - 1) 6));
        t.retried <- t.retried + 1;
        tell_v t
          (Trace.Recovery_retry { asid = t.t_asid; dir_addr; attempt = attempts });
        ignore (Dtb.invalidate dtb ~tag:dir_addr);
        start_translation m ~translator_entry ~dir_addr ~dctx
      in
      let make_interp ~translator_entry m ~dir_addr ~dctx =
        let t = t_of () in
        let step = (Machine.stats m).Machine.interp_count in
        (match Injector.due t.inj ~step with
        | [] -> ()
        | faults -> List.iter (apply_fault m) faults);
        Machine.add_cycles m t_dtb;
        match Dtb.lookup dtb ~tag:dir_addr with
        | `Hit buffer_addr ->
            if not fc.Resilient.guards then
              Machine.set_pc m (Machine.Short buffer_addr)
            else begin
              match
                Guard.check t.guard ~peek:(Machine.peek m) ~dir_addr
                  ~start_addr:buffer_addr
              with
              | `Ok words ->
                  Machine.add_cycles m (t_guard * words);
                  Machine.set_pc m (Machine.Short buffer_addr)
              | `Mismatch | `Unguarded ->
                  Guard.drop t.guard ~start_addr:buffer_addr;
                  detect m ~translator_entry ~dir_addr ~dctx ~fclass:"dtb-tag"
                    ~checked_words:1
              | `Corrupt words ->
                  Guard.drop t.guard ~start_addr:buffer_addr;
                  detect m ~translator_entry ~dir_addr ~dctx
                    ~fclass:"psder-word" ~checked_words:words
            end
        | `Miss -> start_translation m ~translator_entry ~dir_addr ~dctx
      in
      let on_emit ~addr ~word =
        if fc.Resilient.guards then Guard.on_emit (t_of ()).guard ~addr ~word
      in
      let on_end_translation ~start_addr =
        let t = t_of () in
        let dir_addr =
          match t.translating with Some d -> d | None -> assert false
        in
        t.translating <- None;
        if t.doomed then begin
          t.doomed <- false;
          ignore (Dtb.invalidate dtb ~tag:dir_addr);
          Guard.abandon t.guard;
          Guard.drop t.guard ~start_addr
        end
        else if fc.Resilient.guards then
          Guard.finish_install t.guard ~dir_addr ~start_addr
      in
      let machine, _translator_entry =
        U.prepare_dtb_custom ~timing ?fuel ~layout ?backend ~on_emit
          ~on_end_translation ~make_interp ~dtb js.js_encoded
      in
      let t =
        {
          t_js = js;
          t_asid = slot;
          t_interp0 = false;
          t_encoded = js.js_encoded;
          t_total_dir_steps = U.dir_steps_memoized js.js_encoded.Codec.program;
          inj;
          guard = Guard.create ();
          retries = Hashtbl.create 16;
          watchdog = Queue.create ();
          machine;
          mode = Translating;
          translating = None;
          doomed = false;
          ck = None;
          ck_step = 0;
          outstanding = [];
          downgrade_pending = false;
          finished = None;
          out_prefix = "";
          base_cycles = 0;
          injected = 0;
          detected = 0;
          retried = 0;
          rolled_back = 0;
        }
      in
      self := Some t;
      t
    end
  in

  let take_checkpoint t =
    let ck = Machine.checkpoint t.machine in
    Machine.add_cycles t.machine (t2 * Machine.checkpoint_pages ck);
    t.ck <- Some ck;
    t.ck_step <- (Machine.stats t.machine).Machine.interp_count
  in

  let scrub_and_rollback t =
    if t.outstanding <> [] then begin
      let m = t.machine in
      let step = (Machine.stats m).Machine.interp_count in
      List.iter
        (fun _ ->
          t.detected <- t.detected + 1;
          tell_v t
            (Trace.Fault_detected
               { asid = t.t_asid;
                 fclass = Injector.class_name Injector.Mem_word });
          bo_note (vtime t) t.t_asid;
          recovery_event t ~step)
        t.outstanding;
      let ck = match t.ck with Some ck -> ck | None -> assert false in
      Machine.restore m ck;
      Machine.add_cycles m (t2 * Machine.checkpoint_pages ck);
      if tagged_keys then ignore (Dtb.invalidate_asid dtb ~asid:t.t_asid)
      else Dtb.flush dtb;
      Guard.clear t.guard;
      t.outstanding <- [];
      t.finished <- None;
      t.rolled_back <- t.rolled_back + 1;
      tell_v t
        (Trace.Rollback { asid = t.t_asid; pages = Machine.checkpoint_pages ck })
    end
  in

  let downgrade t =
    let m_old = t.machine in
    let dir_addr, dctx, sp_pops =
      match Machine.pc m_old with
      | Machine.Short a -> (
          let w = Machine.peek m_old a in
          match SF.op_of_int (SF.unpack_op w) with
          | SF.Interp_imm -> (SF.unpack_operand w, SF.unpack_ctx w, 0)
          | SF.Interp_stk ->
              let sp = Machine.reg m_old R.sp in
              (Machine.peek m_old (sp - 1), Machine.peek m_old (sp - 2), 2)
          | _ -> assert false)
      | Machine.Long _ -> assert false
    in
    let m_new = U.prepare_interp ~timing ?fuel ~layout ?backend t.t_encoded in
    let sp = Machine.reg m_old R.sp - sp_pops in
    Machine.set_reg m_new R.sp sp;
    Machine.set_reg m_new R.rsp (Machine.reg m_old R.rsp);
    Machine.set_reg m_new R.fp (Machine.reg m_old R.fp);
    Machine.set_reg m_new R.dtop (Machine.reg m_old R.dtop);
    Machine.set_reg m_new R.ctx (Machine.reg m_old R.ctx);
    Machine.set_reg m_new R.dpc dir_addr;
    Machine.set_reg m_new R.dctx dctx;
    let copy_range base limit =
      for a = base to limit - 1 do
        Machine.poke m_new a (Machine.peek m_old a)
      done
    in
    copy_range layout.Layout.op_stack_base sp;
    copy_range layout.Layout.ret_stack_base (Machine.reg m_old R.rsp);
    copy_range layout.Layout.data_base (Machine.reg m_old R.dtop);
    t.out_prefix <- t.out_prefix ^ Machine.output m_old;
    t.base_cycles <- t.base_cycles + (Machine.stats m_old).Machine.cycles;
    Machine.recycle m_old;
    t.machine <- m_new;
    t.mode <- Downgraded;
    t.downgrade_pending <- false;
    t.ck <- None;
    tell_v t (Trace.Downgrade { asid = t.t_asid })
  in

  (* Fold one finished (or voided) attempt's machinery stats into the
     job's cross-attempt accumulators. *)
  let absorb t =
    let js = t.t_js in
    let stats = Machine.stats t.machine in
    js.js_cycles <- js.js_cycles + t.base_cycles + stats.Machine.cycles;
    js.js_injected <- js.js_injected + t.injected;
    js.js_detected <- js.js_detected + t.detected;
    js.js_retries <- js.js_retries + t.retried;
    js.js_rollbacks <- js.js_rollbacks + t.rolled_back;
    if t.mode = Downgraded && not t.t_interp0 then js.js_downgraded <- true
  in

  (* A voided attempt: the job's answer cannot be trusted (end-state
     mismatch) or its slot was quarantined out from under it.  Charge the
     per-job retry budget and either schedule the re-run after an
     exponential backoff or fail the job for good — the distinct [Failed]
     outcome, never a wrong answer. *)
  let void_attempt s t =
    absorb t;
    let js = t.t_js in
    if js.js_attempts > fconfig.c_job_retry_limit then begin
      tell !clock
        (Trace.Job_failed { job = js.js_id; asid = s; attempts = js.js_attempts });
      let solo = Mix.solo_cycles ~timing ?fuel ~config js.js_encoded in
      let sojourn = !clock - js.js_arrival in
      jobs.(js.js_id) <-
        Some
          {
            Serve.j_id = js.js_id;
            j_template = js.js_template;
            j_name = js.js_name;
            j_arrival = js.js_arrival;
            j_admit = js.js_first_admit;
            j_finish = !clock;
            j_asid = s;
            j_cycles = js.js_cycles;
            j_queue_delay = js.js_first_admit - js.js_arrival;
            j_sojourn = sojourn;
            j_solo_cycles = solo;
            j_slowdown =
              (if solo = 0 then 1.
               else float_of_int sojourn /. float_of_int solo);
            j_status = Serve.Failed js.js_attempts;
          }
    end
    else begin
      incr job_retries_n;
      let delay =
        fconfig.c_job_backoff * (1 lsl min (js.js_attempts - 1) 6)
      in
      tell !clock
        (Trace.Job_retry
           { job = js.js_id; asid = s; attempt = js.js_attempts + 1 });
      insert_retry (!clock + delay) js.js_id
    end;
    Machine.recycle t.machine;
    active.(s) <- None
  in

  let retire s t status =
    let js = t.t_js in
    (* a fault-crashed machine can have garbage stack registers; a
       fingerprint that cannot even be computed is a mismatch, not a
       driver crash *)
    let output, hash, intact =
      try
        ( t.out_prefix ^ Machine.output t.machine,
          Resilient.arch_fingerprint ~layout t.machine,
          true )
      with
      | (Out_of_memory | Stack_overflow) as e -> raise e
      | _ when verify -> ("", 0, false)
    in
    js.js_output <- output;
    js.js_arch_hash <- hash;
    let ok =
      intact
      && ((not verify)
         ||
         let sr = solo_of js.js_template in
         status = sr.sr_status
         && String.equal output sr.sr_output
         && hash = sr.sr_arch_hash)
    in
    js.js_state_ok <- ok;
    if ok then begin
      absorb t;
      let solo = Mix.solo_cycles ~timing ?fuel ~config js.js_encoded in
      let sojourn = !clock - js.js_arrival in
      jobs.(js.js_id) <-
        Some
          {
            Serve.j_id = js.js_id;
            j_template = js.js_template;
            j_name = js.js_name;
            j_arrival = js.js_arrival;
            j_admit = js.js_first_admit;
            j_finish = !clock;
            j_asid = s;
            j_cycles = js.js_cycles;
            j_queue_delay = js.js_first_admit - js.js_arrival;
            j_sojourn = sojourn;
            j_solo_cycles = solo;
            j_slowdown =
              (if solo = 0 then 1.
               else float_of_int sojourn /. float_of_int solo);
            j_status = Serve.Completed status;
          };
      (match fconfig.c_deadline with
      | Some bound when status = Machine.Halted && sojourn > bound ->
          incr deadline_misses_n;
          tell !clock
            (Trace.Deadline_miss { job = js.js_id; asid = s; by = sojourn - bound })
      | _ -> ());
      Machine.recycle t.machine;
      active.(s) <- None
    end
    else begin
      (* the attempt ran to completion but its end state is not the
         fault-free answer: a service-level detection, distinct from the
         machinery's per-class detections *)
      js.js_detected <- js.js_detected + 1;
      tell !clock (Trace.Fault_detected { asid = s; fclass = "end-state" });
      bo_note !clock s;
      void_attempt s t
    end
  in

  let admit_to s id =
    let js = jstates.(id) in
    scrub_slot s;
    js.js_attempts <- js.js_attempts + 1;
    if js.js_first_admit < 0 then js.js_first_admit <- !clock;
    let interp0 =
      match fconfig.c_brownout with Some _ -> !stage >= 2 | None -> false
    in
    let t = make_tenant ~slot:s ~interp0 js ~attempt:js.js_attempts in
    active.(s) <- Some t;
    used.(s) <- true;
    tell !clock
      (Trace.Job_admitted
         { job = id; asid = s; wait = !clock - js.js_arrival;
           depth = Queue.length queue });
    if interp0 then begin
      js.js_interp_admit <- true;
      incr interp_admits_n;
      tell !clock (Trace.Interp_admit { job = id; asid = s })
    end
  in

  let admit () =
    let continue = ref true in
    while !continue do
      (* a job whose backoff has expired re-enters ahead of fresh
         arrivals: it has already waited at least one service attempt *)
      let retry_ready =
        match !pending_retries with
        | (at, _) :: _ when at <= !clock -> true
        | _ -> false
      in
      match (retry_ready, Queue.is_empty queue, free_slot ()) with
      | true, _, Some s ->
          let id = snd (List.hd !pending_retries) in
          pending_retries := List.tl !pending_retries;
          admit_to s id
      | false, false, Some s ->
          let id = Queue.pop queue in
          admit_to s id
      | _ -> continue := false
    done
  in

  let evict_cold () =
    match economy with
    | None -> ()
    | Some e when not tagged_keys -> ignore e
    | Some e ->
        let tag_capacity = config.Dtb.sets * config.Dtb.assoc in
        let crowded () =
          float_of_int (Dtb.resident_entries dtb)
          >= e.Serve.evict_watermark *. float_of_int tag_capacity
        in
        let continue = ref true in
        while !continue && crowded () do
          let now = Dtb.use_clock dtb in
          let best = ref None in
          for s = 0 to slots - 1 do
            let idle = now - Dtb.asid_last_use dtb ~asid:s in
            if idle >= e.Serve.evict_min_idle then begin
              let footprint = Dtb.asid_footprint dtb ~asid:s in
              if footprint > 0 then
                match !best with
                | Some (_, bi, bf) when bi > idle || (bi = idle && bf >= footprint)
                  ->
                    ()
                | _ -> best := Some (s, idle, footprint)
            end
          done;
          match !best with
          | None -> continue := false
          | Some (s, _, _) ->
              let entries = Dtb.invalidate_asid dtb ~asid:s in
              incr evictions;
              incr cold_evictions;
              tell !clock (Trace.Asid_evicted { asid = s; entries; cold = true })
        done
  in

  (* Brownout stage 3: take the slot with the most recent detections out
     of service.  Its current attempt (if any) is voided into the retry
     path, its resident translations are flushed, and the slot sits out
     [bo_quarantine] cycles. *)
  let quarantine_poisoned (b : brownout) =
    let per_slot = Array.make slots 0 in
    Queue.iter
      (fun (_, s) ->
        if s >= 0 && s < slots then per_slot.(s) <- per_slot.(s) + 1)
      bo_window;
    let best = ref (-1) and bestc = ref 0 in
    for s = 0 to slots - 1 do
      if per_slot.(s) > !bestc && quarantined_until.(s) <= !clock then begin
        best := s;
        bestc := per_slot.(s)
      end
    done;
    if !best >= 0 then begin
      let s = !best in
      (match active.(s) with Some t -> void_attempt s t | None -> ());
      let entries =
        if tagged_keys then Dtb.invalidate_asid dtb ~asid:s
        else if Dtb.current_asid dtb = s && Dtb.resident_entries dtb > 0
        then begin
          let e = Dtb.resident_entries dtb in
          Dtb.flush dtb;
          e
        end
        else 0
      in
      if entries > 0 then incr evictions;
      quarantined_until.(s) <- !clock + b.bo_quarantine;
      incr quarantines_n;
      tell !clock
        (Trace.Slot_quarantined { asid = s; entries; until = quarantined_until.(s) })
    end
  in

  (* The controller: watch guard-failure rate over a sliding cycle window
     and head-of-queue delay; escalate a stage at a time while either is
     hot, de-escalate only after both have been calm for a full
     hysteresis period (and re-arm the period per stage shed). *)
  let brownout_tick () =
    match fconfig.c_brownout with
    | None -> ()
    | Some b ->
        while
          (not (Queue.is_empty bo_window))
          && fst (Queue.peek bo_window) < !clock - b.bo_window
        do
          ignore (Queue.pop bo_window)
        done;
        let detections = Queue.length bo_window in
        let head_wait =
          match Queue.peek_opt queue with
          | Some id -> !clock - arr.(id).Arrival.at
          | None -> 0
        in
        let hot =
          detections >= b.bo_hi_detections || head_wait >= b.bo_hi_wait
        in
        if hot then begin
          calm_since := -1;
          if !stage < 3 then begin
            let from_stage = !stage in
            stage := !stage + 1;
            tell !clock (Trace.Brownout { from_stage; to_stage = !stage });
            if !stage = 3 then quarantine_poisoned b
          end
        end
        else if !calm_since < 0 then calm_since := !clock
        else if !clock - !calm_since >= b.bo_hysteresis && !stage > 0 then begin
          let from_stage = !stage in
          stage := !stage - 1;
          tell !clock (Trace.Brownout { from_stage; to_stage = !stage });
          calm_since := !clock
        end
  in

  let pick () =
    match scheduler with
    | Scheduler.Round_robin ->
        let rec scan k =
          if k = slots then None
          else
            let i = (!last_index + 1 + k) mod slots in
            if active.(i) <> None then Some i else scan (k + 1)
        in
        scan 0
    | Scheduler.Shortest_remaining ->
        let best = ref None in
        Array.iteri
          (fun i t ->
            match t with
            | None -> ()
            | Some t ->
                let remaining =
                  max 0
                    (t.t_total_dir_steps
                    - (Machine.stats t.machine).Machine.interp_count)
                in
                (match !best with
                | Some (_, r) when r <= remaining -> ()
                | _ -> best := Some (i, remaining)))
          active;
        Option.map fst !best
  in

  let slice i =
    let t = match active.(i) with Some t -> t | None -> assert false in
    if i <> !last_index then begin
      let from_asid = if !last_index < 0 then None else Some !last_index in
      let before = Dtb.flushes dtb in
      Dtb.switch_to dtb ~asid:i;
      incr switches;
      tell !clock (Trace.Switch { from_asid; to_asid = i });
      if Dtb.flushes dtb > before then tell !clock (Trace.Dtb_flush { asid = i })
    end;
    last_index := i;
    let c0 = t.base_cycles + (Machine.stats t.machine).Machine.cycles in
    slice_c0 := c0;
    if mem_faults && t.mode = Translating && t.ck = None then take_checkpoint t;
    let outcome =
      (* guards-off (or mid-install) corruption can make the machine
         execute garbage and die with a host exception rather than a
         guest trap; with faults armed that is just another voided
         attempt, not a driver crash.  Without faults the exception
         propagates — a zero-config crash is a real bug. *)
      try
        match t.mode with
        | Translating -> Machine.run_dir_quantum t.machine ~quantum
        | Downgraded ->
            let budget =
              if quantum > max_int / interp_cycles_per_dir then max_int
              else quantum * interp_cycles_per_dir
            in
            Machine.run_for t.machine ~budget
      with
      | (Out_of_memory | Stack_overflow) as e -> raise e
      | e when verify ->
          let msg =
            match e with
            | Invalid_argument m | Failure m -> m
            | e -> Printexc.to_string e
          in
          Machine.Done (Machine.Trapped ("machine crash: " ^ msg))
    in
    (match outcome with
    | Machine.Done status -> t.finished <- Some status
    | Machine.Yielded -> ());
    (* a fault-corrupted machine can die mid-install; close the shared
       directory's open translation before any flush/invalidate below *)
    (match t.translating with
    | Some _ ->
        Dtb.abort_translation dtb;
        if fc.Resilient.guards then Guard.abandon t.guard;
        t.translating <- None;
        t.doomed <- false
    | None -> ());
    if t.mode = Translating then begin
      scrub_and_rollback t;
      if t.finished = None then
        if t.downgrade_pending then downgrade t
        else if mem_faults then
          match fc.Resilient.checkpoint_every with
          | Some every
            when (Machine.stats t.machine).Machine.interp_count - t.ck_step
                 >= every ->
              take_checkpoint t
          | _ -> ()
    end;
    let now = t.base_cycles + (Machine.stats t.machine).Machine.cycles in
    clock := !clock + (now - c0);
    match t.finished with
    | Some status ->
        tell !clock
          (Trace.Completion { asid = i; ok = status = Machine.Halted });
        retire i t status
    | None -> tell !clock (Trace.Quantum_expiry { asid = i })
  in

  let running = ref true in
  while !running do
    ingest ();
    brownout_tick ();
    admit ();
    evict_cold ();
    match pick () with
    | Some i -> slice i
    | None -> (
        (* nothing resident: jump the clock to the next event that can
           make progress — an arrival, a retry coming off backoff, or a
           quarantined slot coming back while work is waiting *)
        let candidates =
          (if !next < njobs then [ arr.(!next).Arrival.at ] else [])
          (* a retry already due that [admit] could not place (every
             slot quarantined) must not pin the clock in place — the
             quarantine expiries below are the real jump target, and
             when a due retry is unplaceable all slots are quarantined
             past the clock, so that list is never empty *)
          @ (match !pending_retries with
            | (at, _) :: _ when at > !clock -> [ at ]
            | _ -> [])
          @
          if Queue.is_empty queue && !pending_retries = [] then []
          else
            Array.to_list quarantined_until
            |> List.filter (fun u -> u > !clock)
        in
        match candidates with
        | [] -> running := false
        | l -> clock := max !clock (List.fold_left min max_int l))
  done;

  let job_list =
    Array.to_list jobs
    |> List.map (function Some j -> j | None -> assert false)
  in
  let summary =
    Serve.summarize ~njobs ~total_cycles:!clock ~max_depth:!max_depth
      ~evictions:!evictions ~cold_evictions:!cold_evictions
      ~switches:!switches
      ~flushes:(Dtb.flushes dtb - flushes0)
      ~hit_ratio:(Dtb.hit_ratio dtb) job_list
  in
  let serve_result =
    {
      Serve.sv_policy = policy;
      sv_scheduler = scheduler;
      sv_quantum = quantum;
      sv_config = config;
      sv_slots = slots;
      sv_jobs = job_list;
      sv_summary = summary;
      sv_trace = trace;
    }
  in
  let reports =
    Array.to_list jstates
    |> List.map (fun js ->
           {
             cj_id = js.js_id;
             cj_attempts = js.js_attempts;
             cj_injected = js.js_injected;
             cj_detected = js.js_detected;
             cj_retries = js.js_retries;
             cj_rollbacks = js.js_rollbacks;
             cj_downgraded = js.js_downgraded;
             cj_interp_admit = js.js_interp_admit;
             cj_output = js.js_output;
             cj_arch_hash = js.js_arch_hash;
             cj_state_ok = js.js_state_ok;
           })
  in
  let slo_bound = Option.value ~default:max_int fconfig.c_deadline in
  let met, n_completed, attainment = Serve.slo ~bound:slo_bound job_list in
  let attainment =
    if fconfig.c_deadline = None then 1. else attainment
  in
  let goodput =
    if !clock = 0 then 0.
    else float_of_int met /. float_of_int !clock *. 1e6
  in
  let sum f = Array.fold_left (fun a js -> a + f js) 0 jstates in
  let failed_jobs =
    List.length
      (List.filter
         (fun j ->
           match j.Serve.j_status with Serve.Failed _ -> true | _ -> false)
         job_list)
  in
  let csummary =
    {
      cs_slo_met = met;
      cs_slo_completed = n_completed;
      cs_attainment = attainment;
      cs_goodput = goodput;
      cs_deadline_misses = !deadline_misses_n;
      cs_failed_jobs = failed_jobs;
      cs_job_retries = !job_retries_n;
      cs_injected = sum (fun js -> js.js_injected);
      cs_detected = sum (fun js -> js.js_detected);
      cs_recovery_retries = sum (fun js -> js.js_retries);
      cs_rollbacks = sum (fun js -> js.js_rollbacks);
      cs_downgrades =
        sum (fun js -> if js.js_downgraded then 1 else 0);
      cs_interp_admits = !interp_admits_n;
      cs_quarantines = !quarantines_n;
      cs_brownout_transitions = Trace.brownout_transitions trace;
      cs_max_stage = Trace.brownout_peak trace;
    }
  in
  {
    cv_serve = serve_result;
    cv_fconfig = fconfig;
    cv_reports = reports;
    cv_summary = csummary;
  }
