(** Fault-tolerant serving: {!Serve.run}'s open-arrival loop with PR 4's
    fault machinery threaded through every in-service ASID slot, plus a
    service-level robustness policy.

    Three layers ride on top of the plain service:

    - {b The fault machinery} (per attempt, lifted from
      [Uhm_fault.Resilient]): seeded injection at INTERP boundaries,
      per-entry {!Uhm_fault.Guard} checksums verified on DTB hits,
      invalidate-and-retranslate recovery with exponential backoff,
      checkpoint rollback for memory faults, and watchdog downgrade to
      pure interpretation.  Each (job, attempt) pair gets its own
      injector stream, so a re-run attempt does not deterministically
      re-suffer the schedule that voided its predecessor.

    - {b Deadlines and retry}: every accepted completion is verified
      against the template's fault-free solo reference (status, output
      and architectural fingerprint).  A mismatch — or a trap or fuel
      exhaustion that the solo run does not exhibit — voids the attempt:
      the job re-enters service after an exponential backoff
      ([c_job_backoff * 2^(attempt-1)], capped at 64x), up to
      [c_job_retry_limit] retries, after which it retires with the
      distinct {!Serve.Failed} outcome.  The service never reports a
      corrupted answer.  Jobs completing past [c_deadline] raise
      {!Uhm_sched.Trace.Deadline_miss} and count against the exact
      SLO-attainment metric ({!Serve.slo}).

    - {b Brownout}: a controller watches detections over a sliding cycle
      window and head-of-queue delay, and degrades by stage with
      hysteresis on recovery: stage 1 sheds arrivals harder, stage 2
      admits new jobs as pure interpretation (sidestepping the
      translation fault surface), stage 3 quarantines the slot with the
      most recent detections — flushing its entries and voiding its
      current attempt into the retry path.  A quarantine-voided attempt
      charges the same [c_job_retry_limit] budget as a fault-voided
      one: the budget bounds total service work per job, so repeated
      quarantines can retire a job {!Serve.Failed} even though it never
      produced a wrong answer.

    The headline pins, enforced in [test/test_chaos.ml]: under {!zero}
    (no faults, no deadline, no brownout) a run is {e cycle- and
    trace-identical} to {!Serve.run}; and at every grid point, every
    job retired [Completed] has final state equal to its fault-free solo
    run. *)

module Machine := Uhm_machine.Machine
module Dtb := Uhm_core.Dtb
module Scheduler := Uhm_sched.Scheduler
module Resilient := Uhm_fault.Resilient

(** The staged-degradation controller's knobs. *)
type brownout = {
  bo_window : int;
      (** sliding window, in cycles, over which detections are counted *)
  bo_hi_detections : int;
      (** escalate a stage while the window holds at least this many
          detections... *)
  bo_hi_wait : int;
      (** ...or while the head of the admission queue has waited at
          least this many cycles *)
  bo_shed_above : int;
      (** stage 1+: shed arrivals finding at least this many queued *)
  bo_hysteresis : int;
      (** de-escalate one stage only after this many consecutive calm
          cycles (re-armed per stage) *)
  bo_quarantine : int;
      (** cycles a stage-3-quarantined slot sits out of service *)
}

val default_brownout : brownout

type config = {
  c_fault : Resilient.config;
      (** the PR 4 machinery: injector spec, guards, checkpoint cadence,
          per-translation retry/backoff, watchdog *)
  c_job_retry_limit : int;
      (** voided attempts a job may retry before [Failed] *)
  c_job_backoff : int;
      (** base of the job-level exponential backoff, in cycles *)
  c_deadline : int option;  (** per-job sojourn SLO bound, in cycles *)
  c_brownout : brownout option;  (** [None] disables the controller *)
}

val zero : config
(** No faults, no deadline, no brownout: byte-identical to {!Serve.run}
    (retry limit 2 and backoff 4096 are present but unreachable). *)

type job_report = {
  cj_id : int;
  cj_attempts : int;      (** attempts started; 0 for a shed job *)
  cj_injected : int;
  cj_detected : int;      (** machinery detections plus end-state voids *)
  cj_retries : int;       (** per-translation recovery retries *)
  cj_rollbacks : int;
  cj_downgraded : bool;   (** watchdog-downgraded mid-attempt *)
  cj_interp_admit : bool; (** some attempt was admitted at stage 2 *)
  cj_output : string;     (** last attempt's output *)
  cj_arch_hash : int;     (** last attempt's architectural fingerprint *)
  cj_state_ok : bool;     (** end state equals the solo reference (always
                              true when verification is off or the job
                              never ran) *)
}

type chaos_summary = {
  cs_slo_met : int;          (** clean completions within the bound *)
  cs_slo_completed : int;    (** clean completions, the denominator *)
  cs_attainment : float;     (** [met / completed]; 1.0 with no deadline *)
  cs_goodput : float;        (** verified in-SLO completions per Mcycle *)
  cs_deadline_misses : int;
  cs_failed_jobs : int;
  cs_job_retries : int;      (** job-level retry events *)
  cs_injected : int;
  cs_detected : int;
  cs_recovery_retries : int;
  cs_rollbacks : int;
  cs_downgrades : int;
  cs_interp_admits : int;
  cs_quarantines : int;
  cs_brownout_transitions : int;
  cs_max_stage : int;
}

type result = {
  cv_serve : Serve.result;
      (** the service-level result, same shape as {!Serve.run}'s — under
          {!zero} equal to it field for field, trace included *)
  cv_fconfig : config;
  cv_reports : job_report list;  (** in arrival order, shed included *)
  cv_summary : chaos_summary;
}

type solo_ref = { sr_status : Machine.status; sr_output : string; sr_arch_hash : int }

val solo_reference :
  ?timing:Uhm_machine.Timing.t ->
  ?fuel:int ->
  ?layout:Uhm_psder.Layout.t ->
  ?backend:Machine.backend ->
  config:Dtb.config ->
  string * Uhm_encoding.Codec.encoded ->
  solo_ref
(** The fault-free solo run a completion is verified against — exposed so
    tests and experiment grids can re-verify end states independently of
    the driver's own bookkeeping. *)

val run :
  ?timing:Uhm_machine.Timing.t ->
  ?fuel:int ->
  ?layout:Uhm_psder.Layout.t ->
  ?backend:Machine.backend ->
  ?trace_capacity:int ->
  ?scheduler:Scheduler.policy ->
  ?admission:Serve.admission ->
  ?economy:Serve.economy ->
  policy:Dtb.policy ->
  quantum:int ->
  config:Dtb.config ->
  fconfig:config ->
  slots:int ->
  templates:(string * Uhm_encoding.Codec.encoded) list ->
  arrivals:Arrival.arrival list ->
  unit ->
  result
(** Serve [arrivals] as {!Serve.run} does, under [fconfig]'s fault and
    robustness policy.  Raises [Invalid_argument] on everything
    {!Serve.run} rejects, plus a negative retry limit or backoff, a
    deadline below 1, or an injector that can produce [Mem_word] faults
    without a checkpoint cadence. *)
