(** Deterministic open-arrival workload generation over virtual time.

    A job stream is generated up front from a seed: each arrival is a
    (cycle, template) pair, where the template indexes the caller's
    program pool (both front ends' suites, typically).  Generation draws
    from {!Uhm_core.Prng} streams split per purpose — arrival times,
    template picks and burst lengths each get their own stream — so the
    schedule of one aspect never perturbs another, the same discipline
    the fault injector uses for its per-class streams. *)

type process =
  | Poisson of { rate : float }
      (** memoryless arrivals at [rate] jobs per million cycles:
          inter-arrival gaps are exponential with mean [1e6 /. rate]
          cycles (the suite's service times run 50k cycles and up, so
          per-Mcycle is the natural unit for offered load) *)
  | Bursty of { rate : float; burst : float; idle : float }
      (** Markov-modulated bursts: a burst holds a geometric number of
          jobs (mean [burst], at least 1) with exponential in-burst gaps
          at [rate] jobs per million cycles; bursts are separated by
          exponential idle gaps of mean [idle] cycles *)
  | Trace of (int * int) list
      (** explicit (cycle, template) pairs, replayed verbatim (sorted by
          cycle, stable); templates are taken mod the pool size *)

val describe : process -> string
(** A stable one-line description for journal fingerprints, e.g.
    ["poisson(rate=2.5)"]. *)

type arrival = { at : int; template : int }

val generate :
  ?weights:float list ->
  seed:int -> templates:int -> jobs:int -> process -> arrival list
(** [generate ~seed ~templates ~jobs process] is the first [jobs]
    arrivals of the seeded stream, in non-decreasing [at] order, each
    assigned a template in [0, templates).  For [Trace] the pairs are
    truncated (or kept short) to [jobs] and [seed] is unused.

    [weights] (one non-negative float per template, not all zero) skews
    the template pick toward heavier weights — the heavy-tailed pools
    where a few expensive templates dominate offered work.  Omitted,
    picks are uniform and byte-identical to the PR 7 streams.  Either
    way a pick consumes exactly one draw of the picks stream, so
    weighting a pool never perturbs the arrival {e times}.

    Raises [Invalid_argument] on [templates < 1], [jobs < 0], a
    non-positive rate/burst/idle parameter, or malformed [weights]. *)

val heavy_tailed : templates:int -> heavy:(int * float) list -> float list
(** A weight vector that is [1.0] everywhere except the listed
    [(index, weight)] overrides — the shorthand for "mostly small
    templates, a few heavy ones picked rarely (or often)". *)

val weights_name : float list option -> string
(** Stable fingerprint text for a weight vector: ["uniform"] for [None],
    else the hex-float ([%h]) weights comma-joined — exact, so a journal
    resumed under different weights mismatches. *)

val burst_lengths : seed:int -> bursts:int -> burst:float -> int list
(** The burst-length sequence a [Bursty] process with mean [burst] draws
    from [seed] — exposed so tests can pin the distribution without
    reverse-engineering it from arrival gaps. *)
