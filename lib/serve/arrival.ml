(* Seeded arrival-stream generation; see arrival.mli. *)

module Prng = Uhm_core.Prng

type process =
  | Poisson of { rate : float }
  | Bursty of { rate : float; burst : float; idle : float }
  | Trace of (int * int) list

let describe = function
  | Poisson { rate } -> Printf.sprintf "poisson(rate=%g)" rate
  | Bursty { rate; burst; idle } ->
      Printf.sprintf "bursty(rate=%g,burst=%g,idle=%g)" rate burst idle
  | Trace pairs -> Printf.sprintf "trace(%d)" (List.length pairs)

type arrival = { at : int; template : int }

let sat_add a b = if a > max_int - b then max_int else a + b

(* One root per seed, split once per purpose in a fixed order — times,
   template picks, burst lengths — so every purpose's stream is
   independent of how the others are consumed. *)
let streams ~seed =
  let root = Prng.create ~seed ~stream:0 in
  let times = Prng.split root in
  let picks = Prng.split root in
  let lengths = Prng.split root in
  (times, picks, lengths)

let burst_lengths ~seed ~bursts ~burst =
  if burst <= 0. then invalid_arg "Arrival.burst_lengths: burst must be > 0";
  let _, _, lengths = streams ~seed in
  List.init bursts (fun _ -> Prng.geometric lengths ~p:(1. /. Float.max 1. burst))

let generate ~seed ~templates ~jobs process =
  if templates < 1 then invalid_arg "Arrival.generate: templates must be >= 1";
  if jobs < 0 then invalid_arg "Arrival.generate: jobs must be >= 0";
  match process with
  | Trace pairs ->
      let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) pairs in
      List.filteri (fun i _ -> i < jobs) sorted
      |> List.map (fun (at, tmpl) ->
             { at = max 0 at; template = ((tmpl mod templates) + templates) mod templates })
  | Poisson { rate } ->
      if rate <= 0. then invalid_arg "Arrival.generate: rate must be > 0";
      let times, picks, _ = streams ~seed in
      let per_cycle = rate /. 1e6 in
      let t = ref 0 in
      List.init jobs (fun _ ->
          t := sat_add !t (Prng.exponential times ~rate:per_cycle);
          { at = !t; template = Prng.next_int picks mod templates })
  | Bursty { rate; burst; idle } ->
      if rate <= 0. then invalid_arg "Arrival.generate: rate must be > 0";
      if burst <= 0. then invalid_arg "Arrival.generate: burst must be > 0";
      if idle <= 0. then invalid_arg "Arrival.generate: idle must be > 0";
      let times, picks, lengths = streams ~seed in
      let per_cycle = rate /. 1e6 in
      let out = ref [] in
      let t = ref 0 in
      let n = ref 0 in
      while !n < jobs do
        (* burst of [len] jobs after an idle gap *)
        let len = Prng.geometric lengths ~p:(1. /. Float.max 1. burst) in
        t := sat_add !t (Prng.exponential times ~rate:(1. /. idle));
        let k = ref 0 in
        while !k < len && !n < jobs do
          if !k > 0 then t := sat_add !t (Prng.exponential times ~rate:per_cycle);
          out := { at = !t; template = Prng.next_int picks mod templates } :: !out;
          incr k;
          incr n
        done
      done;
      List.rev !out
