(* Seeded arrival-stream generation; see arrival.mli. *)

module Prng = Uhm_core.Prng

type process =
  | Poisson of { rate : float }
  | Bursty of { rate : float; burst : float; idle : float }
  | Trace of (int * int) list

let describe = function
  | Poisson { rate } -> Printf.sprintf "poisson(rate=%g)" rate
  | Bursty { rate; burst; idle } ->
      Printf.sprintf "bursty(rate=%g,burst=%g,idle=%g)" rate burst idle
  | Trace pairs -> Printf.sprintf "trace(%d)" (List.length pairs)

type arrival = { at : int; template : int }

let sat_add a b = if a > max_int - b then max_int else a + b

(* One root per seed, split once per purpose in a fixed order — times,
   template picks, burst lengths — so every purpose's stream is
   independent of how the others are consumed. *)
let streams ~seed =
  let root = Prng.create ~seed ~stream:0 in
  let times = Prng.split root in
  let picks = Prng.split root in
  let lengths = Prng.split root in
  (times, picks, lengths)

(* Template selection.  The uniform path is the PR 7 original — one
   [next_int] draw and a modulus — and must stay byte-identical (the
   seeded goldens pin it).  The weighted path consumes exactly one draw
   of the same picks stream per job too ([next_float] and [next_int] both
   cost one raw draw), so switching a pool between uniform and weighted
   never perturbs the arrival times. *)
let make_pick ?weights ~templates () =
  match weights with
  | None -> fun picks -> Prng.next_int picks mod templates
  | Some ws ->
      if List.length ws <> templates then
        invalid_arg "Arrival.generate: one weight per template required";
      List.iter
        (fun w ->
          if not (Float.is_finite w) || w < 0. then
            invalid_arg "Arrival.generate: weights must be finite and >= 0")
        ws;
      let cum = Array.make templates 0. in
      let _ =
        List.fold_left
          (fun (i, acc) w ->
            let acc = acc +. w in
            cum.(i) <- acc;
            (i + 1, acc))
          (0, 0.) ws
      in
      let total = cum.(templates - 1) in
      if total <= 0. then
        invalid_arg "Arrival.generate: weights must not all be zero";
      fun picks ->
        let u = Prng.next_float picks *. total in
        let rec scan i =
          if i >= templates - 1 then templates - 1
          else if u < cum.(i) then i
          else scan (i + 1)
        in
        scan 0

let heavy_tailed ~templates ~heavy =
  if templates < 1 then
    invalid_arg "Arrival.heavy_tailed: templates must be >= 1";
  List.init templates (fun i ->
      match List.assoc_opt i heavy with
      | Some w ->
          if not (Float.is_finite w) || w < 0. then
            invalid_arg "Arrival.heavy_tailed: weights must be >= 0"
          else w
      | None -> 1.)

let weights_name = function
  | None -> "uniform"
  | Some ws -> String.concat "," (List.map (Printf.sprintf "%h") ws)

let burst_lengths ~seed ~bursts ~burst =
  if burst <= 0. then invalid_arg "Arrival.burst_lengths: burst must be > 0";
  let _, _, lengths = streams ~seed in
  List.init bursts (fun _ -> Prng.geometric lengths ~p:(1. /. Float.max 1. burst))

let generate ?weights ~seed ~templates ~jobs process =
  if templates < 1 then invalid_arg "Arrival.generate: templates must be >= 1";
  if jobs < 0 then invalid_arg "Arrival.generate: jobs must be >= 0";
  let pick = make_pick ?weights ~templates () in
  match process with
  | Trace pairs ->
      let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) pairs in
      List.filteri (fun i _ -> i < jobs) sorted
      |> List.map (fun (at, tmpl) ->
             { at = max 0 at; template = ((tmpl mod templates) + templates) mod templates })
  | Poisson { rate } ->
      if rate <= 0. then invalid_arg "Arrival.generate: rate must be > 0";
      let times, picks, _ = streams ~seed in
      let per_cycle = rate /. 1e6 in
      let t = ref 0 in
      List.init jobs (fun _ ->
          t := sat_add !t (Prng.exponential times ~rate:per_cycle);
          { at = !t; template = pick picks })
  | Bursty { rate; burst; idle } ->
      if rate <= 0. then invalid_arg "Arrival.generate: rate must be > 0";
      if burst <= 0. then invalid_arg "Arrival.generate: burst must be > 0";
      if idle <= 0. then invalid_arg "Arrival.generate: idle must be > 0";
      let times, picks, lengths = streams ~seed in
      let per_cycle = rate /. 1e6 in
      let out = ref [] in
      let t = ref 0 in
      let n = ref 0 in
      while !n < jobs do
        (* burst of [len] jobs after an idle gap *)
        let len = Prng.geometric lengths ~p:(1. /. Float.max 1. burst) in
        t := sat_add !t (Prng.exponential times ~rate:(1. /. idle));
        let k = ref 0 in
        while !k < len && !n < jobs do
          if !k > 0 then t := sat_add !t (Prng.exponential times ~rate:per_cycle);
          out := { at = !t; template = pick picks } :: !out;
          incr k;
          incr n
        done
      done;
      List.rev !out
