(* The offered-load experiment grid; see experiment.mli. *)

module Sweep = Uhm_core.Sweep
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Codec = Uhm_encoding.Codec
module Machine = Uhm_machine.Machine
module Scheduler = Uhm_sched.Scheduler

type shape = Open_poisson | Open_bursty of { burst : float; idle : float }

let shape_name = function
  | Open_poisson -> "poisson"
  | Open_bursty { burst; idle } ->
      Printf.sprintf "bursty(burst=%g,idle=%g)" burst idle

let process_of shape rate =
  match shape with
  | Open_poisson -> Arrival.Poisson { rate }
  | Open_bursty { burst; idle } -> Arrival.Bursty { rate; burst; idle }

type load_cell = {
  lc_policy : Dtb.policy;
  lc_quantum : int;
  lc_rate : float;
  lc_config : Dtb.config;
  lc_result : Serve.result;
}

let default_rates = [ 4.0; 12.0; 40.0 ]

let load_axes ?(quanta = [ 64 ]) ~rates ~policies () =
  List.concat_map
    (fun policy ->
      List.concat_map
        (fun quantum -> List.map (fun rate -> (policy, quantum, rate)) rates)
        quanta)
    policies

(* a cell's host time scales with the simulated work: every job runs its
   template to completion, and small quanta under Flush_on_switch
   retranslate working sets every slice *)
let load_cost ~mean_steps ~jobs (policy, quantum, _) =
  let total = mean_steps * jobs in
  let slices = max 1 (total / max 1 quantum) in
  total + match policy with Dtb.Flush_on_switch -> slices * 64 | _ -> 0

(* encode the template pool once, in parallel, as in the mix grid *)
let load_encodeds ?domains ~kind programs =
  Sweep.map ?domains
    (fun (name, p) -> (name, Codec.encode kind p, U.dir_steps_memoized p))
    programs

let load_cell_of ~trace_capacity ?scheduler ?backend ?shape:(sh = Open_poisson)
    ?admission ?economy ?cell_fuel ~seed ~jobs ~slots ~config templates
    (policy, quantum, rate) =
  let arrivals =
    Arrival.generate ~seed ~templates:(List.length templates) ~jobs
      (process_of sh rate)
  in
  {
    lc_policy = policy;
    lc_quantum = quantum;
    lc_rate = rate;
    lc_config = config;
    lc_result =
      Serve.run ?fuel:cell_fuel ?backend ~trace_capacity ?scheduler ?admission
        ?economy ~policy ~quantum ~config ~slots ~templates ~arrivals ();
  }

let load_grid ?domains ?scheduler ?quanta ?(trace_capacity = 4096) ?backend
    ?shape ?admission ?economy ?cell_fuel ~seed ~jobs ~slots ~kind ~policies
    ~rates ~config programs =
  if programs = [] then invalid_arg "Experiment.load_grid: no programs";
  let encodeds = load_encodeds ?domains ~kind programs in
  let mean_steps =
    List.fold_left (fun acc (_, _, s) -> acc + s) 0 encodeds
    / List.length encodeds
  in
  let templates = List.map (fun (n, e, _) -> (n, e)) encodeds in
  let cells = load_axes ?quanta ~rates ~policies () in
  Sweep.map ?domains
    ~cost:(load_cost ~mean_steps ~jobs)
    (load_cell_of ~trace_capacity ?scheduler ?backend ?shape ?admission
       ?economy ?cell_fuel ~seed ~jobs ~slots ~config templates)
    cells

let load_grid_slots ?domains ?scheduler ?quanta ?(trace_capacity = 4096)
    ?backend ?shape ?admission ?economy ?supervision ?cached ?cell_hook
    ?cell_fuel ?(poison = []) ~seed ~jobs ~slots ~kind ~policies ~rates
    ~config programs =
  if programs = [] then invalid_arg "Experiment.load_grid_slots: no programs";
  let encodeds = load_encodeds ?domains ~kind programs in
  let mean_steps =
    List.fold_left (fun acc (_, _, s) -> acc + s) 0 encodeds
    / List.length encodeds
  in
  let templates = List.map (fun (n, e, _) -> (n, e)) encodeds in
  let cells =
    List.mapi (fun i c -> (i, c)) (load_axes ?quanta ~rates ~policies ())
  in
  Sweep.map_supervised ?supervision ?cached ?cell_hook ?domains
    ~cost:(fun (_, c) -> load_cost ~mean_steps ~jobs c)
    (fun (i, axes) ->
      if List.mem i poison then
        failwith (Printf.sprintf "cell %d poisoned (campaign testing aid)" i);
      let cell =
        load_cell_of ~trace_capacity ?scheduler ?backend ?shape ?admission
          ?economy ?cell_fuel ~seed ~jobs ~slots ~config templates axes
      in
      (* a retired job that did not halt is a failed cell under
         supervision; shed jobs are normal service, not failure *)
      List.iter
        (fun (j : Serve.job) ->
          match j.Serve.j_status with
          | Serve.Shed | Serve.Completed Machine.Halted -> ()
          | Serve.Completed Machine.Out_of_fuel ->
              failwith
                (Printf.sprintf "job %d (%s) ran out of fuel" j.Serve.j_id
                   j.Serve.j_name)
          | Serve.Completed (Machine.Trapped m) ->
              failwith
                (Printf.sprintf "job %d (%s) trapped: %s" j.Serve.j_id
                   j.Serve.j_name m)
          | Serve.Completed Machine.Running -> assert false)
        cell.lc_result.Serve.sv_jobs;
      cell)
    cells
