(* The offered-load experiment grid; see experiment.mli. *)

module Sweep = Uhm_core.Sweep
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Codec = Uhm_encoding.Codec
module Machine = Uhm_machine.Machine
module Scheduler = Uhm_sched.Scheduler
module Injector = Uhm_fault.Injector
module Resilient = Uhm_fault.Resilient

type shape = Open_poisson | Open_bursty of { burst : float; idle : float }

let shape_name = function
  | Open_poisson -> "poisson"
  | Open_bursty { burst; idle } ->
      Printf.sprintf "bursty(burst=%g,idle=%g)" burst idle

let process_of shape rate =
  match shape with
  | Open_poisson -> Arrival.Poisson { rate }
  | Open_bursty { burst; idle } -> Arrival.Bursty { rate; burst; idle }

type load_cell = {
  lc_policy : Dtb.policy;
  lc_quantum : int;
  lc_rate : float;
  lc_config : Dtb.config;
  lc_result : Serve.result;
}

let default_rates = [ 4.0; 12.0; 40.0 ]

let load_axes ?(quanta = [ 64 ]) ~rates ~policies () =
  List.concat_map
    (fun policy ->
      List.concat_map
        (fun quantum -> List.map (fun rate -> (policy, quantum, rate)) rates)
        quanta)
    policies

(* a cell's host time scales with the simulated work: every job runs its
   template to completion, and small quanta under Flush_on_switch
   retranslate working sets every slice *)
let load_cost ~mean_steps ~jobs (policy, quantum, _) =
  let total = mean_steps * jobs in
  let slices = max 1 (total / max 1 quantum) in
  total + match policy with Dtb.Flush_on_switch -> slices * 64 | _ -> 0

(* encode the template pool once, in parallel, as in the mix grid *)
let load_encodeds ?domains ~kind programs =
  Sweep.map ?domains
    (fun (name, p) -> (name, Codec.encode kind p, U.dir_steps_memoized p))
    programs

let load_cell_of ~trace_capacity ?scheduler ?backend ?shape:(sh = Open_poisson)
    ?admission ?economy ?cell_fuel ?weights ~seed ~jobs ~slots ~config templates
    (policy, quantum, rate) =
  let arrivals =
    Arrival.generate ?weights ~seed ~templates:(List.length templates) ~jobs
      (process_of sh rate)
  in
  {
    lc_policy = policy;
    lc_quantum = quantum;
    lc_rate = rate;
    lc_config = config;
    lc_result =
      Serve.run ?fuel:cell_fuel ?backend ~trace_capacity ?scheduler ?admission
        ?economy ~policy ~quantum ~config ~slots ~templates ~arrivals ();
  }

let load_grid ?domains ?scheduler ?quanta ?(trace_capacity = 4096) ?backend
    ?shape ?admission ?economy ?cell_fuel ?weights ~seed ~jobs ~slots ~kind
    ~policies ~rates ~config programs =
  if programs = [] then invalid_arg "Experiment.load_grid: no programs";
  let encodeds = load_encodeds ?domains ~kind programs in
  let mean_steps =
    List.fold_left (fun acc (_, _, s) -> acc + s) 0 encodeds
    / List.length encodeds
  in
  let templates = List.map (fun (n, e, _) -> (n, e)) encodeds in
  let cells = load_axes ?quanta ~rates ~policies () in
  Sweep.map ?domains
    ~cost:(load_cost ~mean_steps ~jobs)
    (load_cell_of ~trace_capacity ?scheduler ?backend ?shape ?admission
       ?economy ?cell_fuel ?weights ~seed ~jobs ~slots ~config templates)
    cells

let load_grid_slots ?domains ?scheduler ?quanta ?(trace_capacity = 4096)
    ?backend ?shape ?admission ?economy ?supervision ?cached ?cell_hook
    ?cell_fuel ?weights ?(poison = []) ~seed ~jobs ~slots ~kind ~policies
    ~rates ~config programs =
  if programs = [] then invalid_arg "Experiment.load_grid_slots: no programs";
  let encodeds = load_encodeds ?domains ~kind programs in
  let mean_steps =
    List.fold_left (fun acc (_, _, s) -> acc + s) 0 encodeds
    / List.length encodeds
  in
  let templates = List.map (fun (n, e, _) -> (n, e)) encodeds in
  let cells =
    List.mapi (fun i c -> (i, c)) (load_axes ?quanta ~rates ~policies ())
  in
  Sweep.map_supervised ?supervision ?cached ?cell_hook ?domains
    ~cost:(fun (_, c) -> load_cost ~mean_steps ~jobs c)
    (fun (i, axes) ->
      if List.mem i poison then
        failwith (Printf.sprintf "cell %d poisoned (campaign testing aid)" i);
      let cell =
        load_cell_of ~trace_capacity ?scheduler ?backend ?shape ?admission
          ?economy ?cell_fuel ?weights ~seed ~jobs ~slots ~config templates
          axes
      in
      (* a retired job that did not halt is a failed cell under
         supervision; shed jobs are normal service, not failure *)
      List.iter
        (fun (j : Serve.job) ->
          match j.Serve.j_status with
          | Serve.Shed | Serve.Completed Machine.Halted -> ()
          | Serve.Completed Machine.Out_of_fuel ->
              failwith
                (Printf.sprintf "job %d (%s) ran out of fuel" j.Serve.j_id
                   j.Serve.j_name)
          | Serve.Completed (Machine.Trapped m) ->
              failwith
                (Printf.sprintf "job %d (%s) trapped: %s" j.Serve.j_id
                   j.Serve.j_name m)
          | Serve.Completed Machine.Running -> assert false
          | Serve.Failed n ->
              (* plain Serve.run never produces Failed; a load cell that
                 does has a broken invariant and must quarantine *)
              failwith
                (Printf.sprintf "job %d (%s) failed after %d attempts"
                   j.Serve.j_id j.Serve.j_name n))
        cell.lc_result.Serve.sv_jobs;
      cell)
    cells

(* -- The resilience grid: fault rate x offered load x policy ---------------- *)

type resilience_cell = {
  rc_policy : Dtb.policy;
  rc_quantum : int;
  rc_fault_rate : float;
  rc_rate : float;
  rc_config : Dtb.config;
  rc_fconfig : Chaos.config;
  rc_result : Chaos.result;
}

let default_fault_rates = [ 0.0; 1e-5; 1e-4 ]

let resilience_fconfig ?(retry_limit = 2) ?(backoff = 4096)
    ?(checkpoint_every = 1024) ?deadline ?brownout ~fault_seed rate =
  if rate < 0.0 || not (Float.is_finite rate) then
    invalid_arg "Experiment.resilience_fconfig: fault rate";
  let c_fault =
    if rate = 0.0 then Resilient.zero
    else
      let per = rate /. float_of_int (List.length Injector.all_classes) in
      Resilient.protected ~checkpoint_every
        {
          Injector.seed = fault_seed;
          rates = List.map (fun c -> (c, per)) Injector.all_classes;
          explicit = [];
        }
  in
  {
    Chaos.c_fault;
    c_job_retry_limit = retry_limit;
    c_job_backoff = backoff;
    c_deadline = deadline;
    c_brownout = brownout;
  }

let resilience_axes ?(quanta = [ 64 ]) ~rates ~fault_rates ~policies () =
  List.concat_map
    (fun policy ->
      List.concat_map
        (fun quantum ->
          List.concat_map
            (fun fr -> List.map (fun rate -> (policy, quantum, fr, rate)) rates)
            fault_rates)
        quanta)
    policies

(* faults inflate a cell's work: every detection re-runs a translation,
   every void re-runs the whole job.  The multiplier is a scheduling
   hint, not an accounting identity. *)
let resilience_cost ~mean_steps ~jobs (policy, quantum, fault_rate, rate) =
  let base = load_cost ~mean_steps ~jobs (policy, quantum, rate) in
  base + int_of_float (float_of_int base *. 200.0 *. fault_rate)

let resilience_cell_of ~trace_capacity ?scheduler ?backend
    ?shape:(sh = Open_poisson) ?admission ?economy ?cell_fuel ?weights
    ?retry_limit ?backoff ?checkpoint_every ?deadline ?brownout ~fault_seed
    ~seed ~jobs ~slots ~config templates (policy, quantum, fault_rate, rate) =
  let arrivals =
    Arrival.generate ?weights ~seed ~templates:(List.length templates) ~jobs
      (process_of sh rate)
  in
  let fconfig =
    resilience_fconfig ?retry_limit ?backoff ?checkpoint_every ?deadline
      ?brownout ~fault_seed fault_rate
  in
  {
    rc_policy = policy;
    rc_quantum = quantum;
    rc_fault_rate = fault_rate;
    rc_rate = rate;
    rc_config = config;
    rc_fconfig = fconfig;
    rc_result =
      Chaos.run ?fuel:cell_fuel ?backend ~trace_capacity ?scheduler ?admission
        ?economy ~policy ~quantum ~config ~fconfig ~slots ~templates ~arrivals
        ();
  }

let resilience_grid ?domains ?scheduler ?quanta ?(trace_capacity = 4096)
    ?backend ?shape ?admission ?economy ?cell_fuel ?weights ?retry_limit
    ?backoff ?checkpoint_every ?deadline ?brownout ?(fault_seed = 4242) ~seed
    ~jobs ~slots ~kind ~policies ~fault_rates ~rates ~config programs =
  if programs = [] then invalid_arg "Experiment.resilience_grid: no programs";
  let encodeds = load_encodeds ?domains ~kind programs in
  let mean_steps =
    List.fold_left (fun acc (_, _, s) -> acc + s) 0 encodeds
    / List.length encodeds
  in
  let templates = List.map (fun (n, e, _) -> (n, e)) encodeds in
  let cells = resilience_axes ?quanta ~rates ~fault_rates ~policies () in
  Sweep.map ?domains
    ~cost:(resilience_cost ~mean_steps ~jobs)
    (resilience_cell_of ~trace_capacity ?scheduler ?backend ?shape ?admission
       ?economy ?cell_fuel ?weights ?retry_limit ?backoff ?checkpoint_every
       ?deadline ?brownout ~fault_seed ~seed ~jobs ~slots ~config templates)
    cells

let resilience_grid_slots ?domains ?scheduler ?quanta ?(trace_capacity = 4096)
    ?backend ?shape ?admission ?economy ?supervision ?cached ?cell_hook
    ?cell_fuel ?weights ?retry_limit ?backoff ?checkpoint_every ?deadline
    ?brownout ?(fault_seed = 4242) ?(poison = []) ~seed ~jobs ~slots ~kind
    ~policies ~fault_rates ~rates ~config programs =
  if programs = [] then
    invalid_arg "Experiment.resilience_grid_slots: no programs";
  let encodeds = load_encodeds ?domains ~kind programs in
  let mean_steps =
    List.fold_left (fun acc (_, _, s) -> acc + s) 0 encodeds
    / List.length encodeds
  in
  let templates = List.map (fun (n, e, _) -> (n, e)) encodeds in
  let cells =
    List.mapi (fun i c -> (i, c))
      (resilience_axes ?quanta ~rates ~fault_rates ~policies ())
  in
  Sweep.map_supervised ?supervision ?cached ?cell_hook ?domains
    ~cost:(fun (_, c) -> resilience_cost ~mean_steps ~jobs c)
    (fun (i, axes) ->
      if List.mem i poison then
        failwith (Printf.sprintf "cell %d poisoned (campaign testing aid)" i);
      let cell =
        resilience_cell_of ~trace_capacity ?scheduler ?backend ?shape
          ?admission ?economy ?cell_fuel ?weights ?retry_limit ?backoff
          ?checkpoint_every ?deadline ?brownout ~fault_seed ~seed ~jobs ~slots
          ~config templates axes
      in
      (* the no-wrong-answers invariant is the supervised failure
         condition: an accepted completion whose end state does not match
         its fault-free solo run quarantines the cell.  Failed jobs are
         the designed outcome of exhausted retries, not a cell failure. *)
      let reports =
        Array.of_list cell.rc_result.Chaos.cv_reports
      in
      List.iter
        (fun (j : Serve.job) ->
          match j.Serve.j_status with
          | Serve.Shed | Serve.Failed _ -> ()
          | Serve.Completed _ ->
              if not (reports.(j.Serve.j_id)).Chaos.cj_state_ok then
                failwith
                  (Printf.sprintf
                     "job %d (%s) accepted with a corrupted end state"
                     j.Serve.j_id j.Serve.j_name))
        cell.rc_result.Chaos.cv_serve.Serve.sv_jobs;
      cell)
    cells
