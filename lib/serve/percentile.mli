(** Exact nearest-rank percentiles for latency distributions.

    The load service reports p50/p95/p99 of sojourn times and queueing
    delays.  These are {e exact} nearest-rank order statistics — the
    ceil(p/100 * n)-th smallest sample — not interpolated estimates:
    with deterministic virtual-time simulation there is no reason to
    approximate, and exactness is what makes the numbers byte-stable
    across domain counts and journal resumes.

    Selection is in-place quickselect with a median-of-three pivot
    (deterministic, no randomness), so a full sort is avoided; the
    QCheck suite checks it against a sort-based oracle. *)

val nearest_rank : int array -> p:float -> int
(** [nearest_rank data ~p] is the nearest-rank [p]-th percentile of
    [data]: its ceil([p]/100 * n)-th smallest element (1-indexed).
    [data] is not modified.  Raises [Invalid_argument] on an empty
    array or [p] outside (0, 100]. *)

val summary : int list -> int * int * int
(** [(p50, p95, p99)] of the samples; [(0, 0, 0)] when empty. *)
