(** The open-arrival translation service: streaming admission of guest
    programs onto a bounded pool of ASID slots sharing one DTB.

    Where {!Uhm_sched.Mix} runs a {e closed} set of programs to
    completion, this layer serves an {e open} stream: jobs arrive over
    virtual time (see {!Arrival}), wait in a bounded admission queue,
    are bound to an ASID slot when one frees up, run under the PR 3
    scheduler disciplines against the shared DTB, and retire.  Thousands
    of jobs thus flow through a handful of architectural ASIDs — the
    slot space is the DTB's namespace ([Partitioned] caps it at the set
    count), so slots are recycled, and recycling is exactly why the
    eviction economy exists: under [Tagged]/[Partitioned] sharing a
    recycled slot's stale translations would falsely hit for the new
    tenant, so the slot is invalidated at reassignment; optionally, cold
    slots are also evicted early (idle-time and footprint scoring) to
    return directory capacity to the tenants that are actually running.

    Everything is deterministic in the seed: the driver is serial, one
    virtual clock, and in the closed-system limit (all arrivals at cycle
    0, as many slots as jobs, no economy) it reproduces
    {!Uhm_sched.Scheduler.run}'s dispatch sequence, cycle counts and
    trace rollups bit for bit — the regression anchor that pins the open
    system to the PR 3 goldens. *)

module Dtb := Uhm_core.Dtb
module Machine := Uhm_machine.Machine
module Scheduler := Uhm_sched.Scheduler
module Trace := Uhm_sched.Trace

(** Admission control for the bounded queue. *)
type admission = {
  queue_capacity : int;
      (** drop-tail bound: an arrival finding this many jobs queued is
          shed *)
  shed_above : int option;
      (** load shedding: also shed arrivals while the queue holds at
          least this many jobs (a softer, configurable threshold below
          the hard capacity) *)
}

val default_admission : admission
(** Capacity 64, no shedding threshold. *)

(** The cold-ASID eviction economy.  Disabled unless given to {!run}. *)
type economy = {
  evict_min_idle : int;
      (** only slots idle for at least this many DTB recency-clock ticks
          are candidates *)
  evict_watermark : float;
      (** trigger scoring only while the directory's resident entries
          are at least this fraction of its tag capacity *)
}

val default_economy : economy
(** Watermark 0.75, minimum idle 256 ticks. *)

type job_status =
  | Completed of Machine.status  (** ran to retirement (however it ended) *)
  | Shed                         (** refused by admission control *)
  | Failed of int
      (** chaos mode only: every attempt (the int) was voided — by a
          detected fault, or by a stage-3 brownout quarantining the
          slot out from under it — and the per-job retry budget ran
          out; the service reports the failure rather than a corrupted
          answer.  Quarantine-voided attempts consume the same retry
          budget as fault-voided ones, so a job can retire [Failed]
          without ever producing a wrong answer itself.  Plain {!run}
          never produces this. *)

type job = {
  j_id : int;            (** arrival order, 0-based *)
  j_template : int;      (** index into the template pool *)
  j_name : string;       (** template name *)
  j_arrival : int;       (** arrival cycle *)
  j_admit : int;         (** cycle bound to a slot; -1 if shed *)
  j_finish : int;        (** retirement cycle; -1 if shed *)
  j_asid : int;          (** slot served in; -1 if shed *)
  j_cycles : int;        (** service cycles actually executed *)
  j_queue_delay : int;   (** [j_admit - j_arrival]; 0 if shed *)
  j_sojourn : int;       (** [j_finish - j_arrival]; 0 if shed *)
  j_solo_cycles : int;   (** the memoised solo run (PR 5's denominator) *)
  j_slowdown : float;    (** [j_sojourn / j_solo_cycles]; 0 if shed *)
  j_status : job_status;
}

type summary = {
  s_jobs : int;            (** arrivals offered *)
  s_completed : int;       (** jobs that retired with [Machine.Halted] *)
  s_failed : int;          (** jobs that retired any other way
                               ([Failed] included) *)
  s_shed : int;
  s_total_cycles : int;    (** virtual clock at the end of the run *)
  s_throughput : float;    (** retired jobs per million cycles *)
  s_p50 : int;             (** sojourn percentiles, exact nearest-rank *)
  s_p95 : int;
  s_p99 : int;
  s_qd_p50 : int;          (** queueing-delay percentiles *)
  s_qd_p95 : int;
  s_qd_p99 : int;
  s_mean_slowdown : float; (** over retired jobs *)
  s_max_depth : int;       (** high-water mark of the admission queue *)
  s_evictions : int;       (** ASID evictions (recycle + cold) *)
  s_cold_evictions : int;  (** the economy's share of those *)
  s_switches : int;
  s_flushes : int;
  s_hit_ratio : float;     (** DTB, whole run *)
}

type result = {
  sv_policy : Dtb.policy;
  sv_scheduler : Scheduler.policy;
  sv_quantum : int;
  sv_config : Dtb.config;
  sv_slots : int;
  sv_jobs : job list;      (** in arrival order, shed jobs included *)
  sv_summary : summary;
  sv_trace : Trace.t;
}

val run :
  ?timing:Uhm_machine.Timing.t ->
  ?fuel:int ->
  ?layout:Uhm_psder.Layout.t ->
  ?backend:Machine.backend ->
  ?trace_capacity:int ->
  ?scheduler:Scheduler.policy ->
  ?admission:admission ->
  ?economy:economy ->
  policy:Dtb.policy ->
  quantum:int ->
  config:Dtb.config ->
  slots:int ->
  templates:(string * Uhm_encoding.Codec.encoded) list ->
  arrivals:Arrival.arrival list ->
  unit ->
  result
(** Serve [arrivals] (template indices into [templates], non-decreasing
    arrival cycles) through [slots] ASID slots sharing one DTB under
    [policy].  Arrivals are ingested and admissions performed at
    scheduling points (slice boundaries and idle jumps), so the service
    is quantum-granular in virtual time and fully deterministic.  Each
    admitted job gets a fresh machine ({!Uhm_core.Uhm.prepare_dtb_shared});
    machines are recycled at retirement.  [quantum] must be >= 1;
    [slots] >= 1 (and <= [config.sets] under [Partitioned], which the
    underlying {!Dtb.create_shared} enforces).  Raises
    [Invalid_argument] on empty [templates], an out-of-range template
    index, or arrivals out of order. *)

val summarize :
  njobs:int ->
  total_cycles:int ->
  max_depth:int ->
  evictions:int ->
  cold_evictions:int ->
  switches:int ->
  flushes:int ->
  hit_ratio:float ->
  job list ->
  summary
(** The summary arithmetic over a finished job list — shared with
    {!Chaos.run} so the zero-fault configuration's summary is the same
    record by construction, not by parallel reimplementation. *)

val slo : bound:int -> job list -> int * int * float
(** [slo ~bound jobs] is [(met, completed, attainment)]: of the jobs
    that retired [Completed Machine.Halted], how many had a sojourn of
    at most [bound] cycles, and the exact fraction ([0.] when nothing
    completed).  The deadline metric is pure bookkeeping over the job
    list, so it applies to fault-free {!run} results and chaos results
    alike. *)
