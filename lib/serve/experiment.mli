(** The saturation-study grid: offered load x policy x quantum, each cell
    one complete open-arrival serve run, evaluated on the
    {!Uhm_core.Sweep} pool.

    Cells are independent full simulations (each builds its own DTB,
    arrival stream and machines), so the grid parallelises like any
    other sweep and the result list is byte-identical at any domain
    count; under campaign supervision ({!load_grid_slots}) it gets
    journaled kill/resume for free.  The output — latency percentiles
    and throughput per offered load — is the latency-vs-load curve, the
    system's first saturation study. *)

module Dtb := Uhm_core.Dtb
module Sweep := Uhm_core.Sweep
module Scheduler := Uhm_sched.Scheduler

(** The arrival-process shape swept over the rate axis. *)
type shape =
  | Open_poisson
      (** memoryless arrivals at each axis rate *)
  | Open_bursty of { burst : float; idle : float }
      (** bursts of mean length [burst] at each axis rate, separated by
          idle gaps of mean [idle] cycles *)

val shape_name : shape -> string
(** Stable description for fingerprints: ["poisson"],
    ["bursty(burst=8,idle=5000)"]. *)

type load_cell = {
  lc_policy : Dtb.policy;
  lc_quantum : int;
  lc_rate : float;       (** offered load, jobs per million cycles *)
  lc_config : Dtb.config;
  lc_result : Serve.result;
}

val default_rates : float list
(** [4.0; 12.0; 40.0] jobs per million cycles: below, around, and past
    the knee for a pool of the suite's light templates (service times
    around 50k–120k cycles, so capacity lands near 10 jobs/Mcycle). *)

val load_axes :
  ?quanta:int list ->
  rates:float list ->
  policies:Dtb.policy list ->
  unit ->
  (Dtb.policy * int * float) list
(** Cell axes in submission order: policies outermost, then quanta
    (default [[64]]), then rates — so each policy's latency curve is a
    contiguous run of cells. *)

val load_grid :
  ?domains:int ->
  ?scheduler:Scheduler.policy ->
  ?quanta:int list ->
  ?trace_capacity:int ->
  ?backend:Uhm_machine.Machine.backend ->
  ?shape:shape ->
  ?admission:Serve.admission ->
  ?economy:Serve.economy ->
  ?cell_fuel:int ->
  ?weights:float list ->
  seed:int ->
  jobs:int ->
  slots:int ->
  kind:Uhm_encoding.Kind.t ->
  policies:Dtb.policy list ->
  rates:float list ->
  config:Dtb.config ->
  (string * Uhm_dir.Program.t) list ->
  load_cell list
(** One serve run per {!load_axes} cell over the given template pool
    (encoded once, in parallel, like the mix grid's pre-pass).  [shape]
    defaults to [Open_poisson]; [trace_capacity] to a small ring (4096)
    since grids keep every cell's trace alive; [cell_fuel] bounds each
    job's machine so a wedged guest cannot hang a cell; [weights] skews
    the template pick per {!Arrival.generate} (heavy-tailed pools). *)

val load_grid_slots :
  ?domains:int ->
  ?scheduler:Scheduler.policy ->
  ?quanta:int list ->
  ?trace_capacity:int ->
  ?backend:Uhm_machine.Machine.backend ->
  ?shape:shape ->
  ?admission:Serve.admission ->
  ?economy:Serve.economy ->
  ?supervision:Sweep.supervision ->
  ?cached:(int -> load_cell option) ->
  ?cell_hook:(index:int -> attempts:int -> load_cell Sweep.slot -> unit) ->
  ?cell_fuel:int ->
  ?weights:float list ->
  ?poison:int list ->
  seed:int ->
  jobs:int ->
  slots:int ->
  kind:Uhm_encoding.Kind.t ->
  policies:Dtb.policy list ->
  rates:float list ->
  config:Dtb.config ->
  (string * Uhm_dir.Program.t) list ->
  load_cell Sweep.slot list
(** {!load_grid} under campaign supervision: a failing cell is retried
    and then quarantined instead of aborting the grid, and
    [cached]/[cell_hook] plug in a {!Uhm_campaign} journal.  Under
    supervision a cell in which any {e retired} job did not halt fails
    (and is quarantined) — shed jobs are normal service, not failure.
    [poison] is the quarantine-path testing aid, as in the mix grid.
    Completed slots are byte-identical to the corresponding {!load_grid}
    cells. *)

(** {1 The resilience grid}

    Fault rate x offered load x policy, each cell one complete
    {!Chaos.run}: the same independent-cell discipline as the load grid,
    so the grid parallelises on the sweep pool, is byte-identical at any
    domain count, and (in the [_slots] form) gets journaled kill/resume
    under campaign supervision.  The output is the degradation surface:
    SLO attainment, goodput and tail latency as functions of the
    injected fault rate. *)

type resilience_cell = {
  rc_policy : Dtb.policy;
  rc_quantum : int;
  rc_fault_rate : float;
      (** total per-INTERP-step injection probability, split evenly over
          all four fault classes; [0.0] is the fault-free control *)
  rc_rate : float;  (** offered load, jobs per million cycles *)
  rc_config : Dtb.config;
  rc_fconfig : Chaos.config;  (** the policy the cell actually ran under *)
  rc_result : Chaos.result;
}

val default_fault_rates : float list
(** [[0.0; 1e-5; 1e-4]]: the control, a rate where most jobs run clean,
    and one where most attempts see at least one injection. *)

val resilience_fconfig :
  ?retry_limit:int ->
  ?backoff:int ->
  ?checkpoint_every:int ->
  ?deadline:int ->
  ?brownout:Chaos.brownout ->
  fault_seed:int ->
  float ->
  Chaos.config
(** The canonical cell policy for a total fault rate: guards on,
    checkpoints every 1024 steps (iff memory faults are possible), the
    rate split evenly over {!Uhm_fault.Injector.all_classes}, job-level
    retry (default limit 2, backoff 4096) — and no brownout unless
    given.  Rate [0.0] yields {!Uhm_fault.Resilient.zero} machinery, so
    the control column pays no guard or checkpoint overhead.  Raises
    [Invalid_argument] on a negative or non-finite rate. *)

val resilience_axes :
  ?quanta:int list ->
  rates:float list ->
  fault_rates:float list ->
  policies:Dtb.policy list ->
  unit ->
  (Dtb.policy * int * float * float) list
(** Cell axes in submission order: policies outermost, then quanta
    (default [[64]]), then fault rates, then offered-load rates — so
    each (policy, fault-rate) degradation curve is a contiguous run. *)

val resilience_grid :
  ?domains:int ->
  ?scheduler:Scheduler.policy ->
  ?quanta:int list ->
  ?trace_capacity:int ->
  ?backend:Uhm_machine.Machine.backend ->
  ?shape:shape ->
  ?admission:Serve.admission ->
  ?economy:Serve.economy ->
  ?cell_fuel:int ->
  ?weights:float list ->
  ?retry_limit:int ->
  ?backoff:int ->
  ?checkpoint_every:int ->
  ?deadline:int ->
  ?brownout:Chaos.brownout ->
  ?fault_seed:int ->
  seed:int ->
  jobs:int ->
  slots:int ->
  kind:Uhm_encoding.Kind.t ->
  policies:Dtb.policy list ->
  fault_rates:float list ->
  rates:float list ->
  config:Dtb.config ->
  (string * Uhm_dir.Program.t) list ->
  resilience_cell list
(** One {!Chaos.run} per {!resilience_axes} cell, every cell's policy
    built by {!resilience_fconfig} from the cell's fault rate (same
    [fault_seed], default 4242, for every cell: columns differ only in
    rate).  [cell_fuel] matters more here than in the load grid — a
    corrupted attempt can loop, and must trap out rather than hold its
    slot indefinitely. *)

val resilience_grid_slots :
  ?domains:int ->
  ?scheduler:Scheduler.policy ->
  ?quanta:int list ->
  ?trace_capacity:int ->
  ?backend:Uhm_machine.Machine.backend ->
  ?shape:shape ->
  ?admission:Serve.admission ->
  ?economy:Serve.economy ->
  ?supervision:Sweep.supervision ->
  ?cached:(int -> resilience_cell option) ->
  ?cell_hook:(index:int -> attempts:int -> resilience_cell Sweep.slot -> unit) ->
  ?cell_fuel:int ->
  ?weights:float list ->
  ?retry_limit:int ->
  ?backoff:int ->
  ?checkpoint_every:int ->
  ?deadline:int ->
  ?brownout:Chaos.brownout ->
  ?fault_seed:int ->
  ?poison:int list ->
  seed:int ->
  jobs:int ->
  slots:int ->
  kind:Uhm_encoding.Kind.t ->
  policies:Dtb.policy list ->
  fault_rates:float list ->
  rates:float list ->
  config:Dtb.config ->
  (string * Uhm_dir.Program.t) list ->
  resilience_cell Sweep.slot list
(** {!resilience_grid} under campaign supervision.  The supervised
    failure condition is the no-wrong-answers invariant itself: a cell
    in which any accepted completion's end state differs from its
    fault-free solo run is retried and then quarantined.  [Failed] jobs
    (exhausted retries) are the designed outcome, not a cell failure.
    [poison] is the quarantine-path testing aid, as in the load grid. *)
