(* The open-arrival serve driver; see serve.mli.

   The slice body below mirrors Uhm_sched.Scheduler.run statement for
   statement (pick order, switch_to/trace sequencing, clock arithmetic,
   per-slice stat attribution).  That is not incidental: the closed-system
   pin — all arrivals at cycle 0, as many slots as jobs — must reproduce
   the PR 3 scheduler's cycle counts and trace rollups bit for bit, so any
   divergence here is a regression against the Mix goldens. *)

module Machine = Uhm_machine.Machine
module Dtb = Uhm_core.Dtb
module U = Uhm_core.Uhm
module Codec = Uhm_encoding.Codec
module Layout = Uhm_psder.Layout
module Scheduler = Uhm_sched.Scheduler
module Trace = Uhm_sched.Trace
module Mix = Uhm_sched.Mix

type admission = { queue_capacity : int; shed_above : int option }

let default_admission = { queue_capacity = 64; shed_above = None }

type economy = { evict_min_idle : int; evict_watermark : float }

let default_economy = { evict_min_idle = 256; evict_watermark = 0.75 }

type job_status = Completed of Machine.status | Shed | Failed of int

type job = {
  j_id : int;
  j_template : int;
  j_name : string;
  j_arrival : int;
  j_admit : int;
  j_finish : int;
  j_asid : int;
  j_cycles : int;
  j_queue_delay : int;
  j_sojourn : int;
  j_solo_cycles : int;
  j_slowdown : float;
  j_status : job_status;
}

type summary = {
  s_jobs : int;
  s_completed : int;
  s_failed : int;
  s_shed : int;
  s_total_cycles : int;
  s_throughput : float;
  s_p50 : int;
  s_p95 : int;
  s_p99 : int;
  s_qd_p50 : int;
  s_qd_p95 : int;
  s_qd_p99 : int;
  s_mean_slowdown : float;
  s_max_depth : int;
  s_evictions : int;
  s_cold_evictions : int;
  s_switches : int;
  s_flushes : int;
  s_hit_ratio : float;
}

type result = {
  sv_policy : Dtb.policy;
  sv_scheduler : Scheduler.policy;
  sv_quantum : int;
  sv_config : Dtb.config;
  sv_slots : int;
  sv_jobs : job list;
  sv_summary : summary;
  sv_trace : Trace.t;
}

(* The summary arithmetic, shared with the chaos driver (Chaos.run builds
   the same record from its own loop): keeping it in one place is part of
   the zero-fault identity pin. *)
let summarize ~njobs ~total_cycles ~max_depth ~evictions ~cold_evictions
    ~switches ~flushes ~hit_ratio job_list =
  let retired =
    List.filter
      (fun j ->
        match j.j_status with
        | Completed _ | Failed _ -> true
        | Shed -> false)
      job_list
  in
  let completed =
    List.length
      (List.filter (fun j -> j.j_status = Completed Machine.Halted) retired)
  in
  let shed = List.length job_list - List.length retired in
  let p50, p95, p99 =
    Percentile.summary (List.map (fun j -> j.j_sojourn) retired)
  in
  let qd_p50, qd_p95, qd_p99 =
    Percentile.summary (List.map (fun j -> j.j_queue_delay) retired)
  in
  let mean_slowdown =
    match retired with
    | [] -> 0.
    | _ ->
        List.fold_left (fun a j -> a +. j.j_slowdown) 0. retired
        /. float_of_int (List.length retired)
  in
  {
    s_jobs = njobs;
    s_completed = completed;
    s_failed = List.length retired - completed;
    s_shed = shed;
    s_total_cycles = total_cycles;
    s_throughput =
      (if total_cycles = 0 then 0.
       else float_of_int completed /. float_of_int total_cycles *. 1e6);
    s_p50 = p50;
    s_p95 = p95;
    s_p99 = p99;
    s_qd_p50 = qd_p50;
    s_qd_p95 = qd_p95;
    s_qd_p99 = qd_p99;
    s_mean_slowdown = mean_slowdown;
    s_max_depth = max_depth;
    s_evictions = evictions;
    s_cold_evictions = cold_evictions;
    s_switches = switches;
    s_flushes = flushes;
    s_hit_ratio = hit_ratio;
  }

(* SLO attainment: the exact deadline metric over a finished job list.
   Only jobs that completed with a clean halt can meet the bound; shed
   and failed jobs count against attainment's denominator only through
   their absence from it (they are reported separately). *)
let slo ~bound jobs =
  let completed =
    List.filter (fun j -> j.j_status = Completed Machine.Halted) jobs
  in
  let met = List.filter (fun j -> j.j_sojourn <= bound) completed in
  let n_completed = List.length completed and n_met = List.length met in
  ( n_met,
    n_completed,
    if n_completed = 0 then 0.
    else float_of_int n_met /. float_of_int n_completed )

(* One admitted job bound to an ASID slot. *)
type tenant = {
  t_job : int;
  t_template : int;
  t_name : string;
  t_encoded : Codec.encoded;
  t_machine : Machine.t;
  t_total_dir_steps : int;
  t_hook : (dir_addr:int -> unit) ref;
  t_arrival : int;
  t_admit : int;
  mutable t_slices : int;
  mutable t_hits : int;
  mutable t_misses : int;
  mutable t_evictions : int;
}

let run ?timing ?fuel ?(layout = Layout.default) ?backend
    ?(trace_capacity = 65536) ?(scheduler = Scheduler.Round_robin)
    ?(admission = default_admission) ?economy ~policy ~quantum ~config ~slots
    ~templates ~arrivals () =
  if templates = [] then invalid_arg "Serve.run: no templates";
  if quantum < 1 then invalid_arg "Serve.run: quantum must be >= 1";
  if slots < 1 then invalid_arg "Serve.run: slots must be >= 1";
  if admission.queue_capacity < 1 then
    invalid_arg "Serve.run: queue capacity must be >= 1";
  let tmpl = Array.of_list templates in
  let arr = Array.of_list arrivals in
  let njobs = Array.length arr in
  Array.iteri
    (fun i (a : Arrival.arrival) ->
      if a.Arrival.template < 0 || a.Arrival.template >= Array.length tmpl
      then invalid_arg "Serve.run: template index out of range";
      if i > 0 && a.Arrival.at < arr.(i - 1).Arrival.at then
        invalid_arg "Serve.run: arrivals out of order")
    arr;
  let dtb =
    Dtb.create_shared ~policy ~programs:slots config
      ~buffer_base:(layout.Layout.dtb_buffer_base + 1)
  in
  let trace = Trace.create ~capacity:trace_capacity () in
  let tell at kind = Trace.record trace ~at_cycle:at kind in
  let jobs : job option array = Array.make njobs None in
  let queue : int Queue.t = Queue.create () in
  let active : tenant option array = Array.make slots None in
  let used = Array.make slots false in
  let next = ref 0 in
  let clock = ref 0 in
  let switches = ref 0 in
  let flushes0 = Dtb.flushes dtb in
  let last_index = ref (-1) in
  let max_depth = ref 0 in
  let evictions = ref 0 in
  let cold_evictions = ref 0 in
  (* ASID-qualified keys exist exactly when several slots share the tag
     array; with one slot (or Flush_on_switch) keys are raw DIR addrs *)
  let tagged_keys = policy <> Dtb.Flush_on_switch && slots > 1 in

  let shed_job id (a : Arrival.arrival) =
    let name, _ = tmpl.(a.Arrival.template) in
    jobs.(id) <-
      Some
        {
          j_id = id;
          j_template = a.Arrival.template;
          j_name = name;
          j_arrival = a.Arrival.at;
          j_admit = -1;
          j_finish = -1;
          j_asid = -1;
          j_cycles = 0;
          j_queue_delay = 0;
          j_sojourn = 0;
          j_solo_cycles = 0;
          j_slowdown = 0.;
          j_status = Shed;
        }
  in

  (* Pull every arrival the virtual clock has reached into the admission
     queue, shedding per the admission-control config.  Event timestamps
     are the arrival cycles: that is when the queue actually changed. *)
  let ingest () =
    while !next < njobs && arr.(!next).Arrival.at <= !clock do
      let id = !next in
      let a = arr.(id) in
      let depth = Queue.length queue in
      let shed =
        depth >= admission.queue_capacity
        ||
        match admission.shed_above with
        | Some threshold -> depth >= threshold
        | None -> false
      in
      if shed then begin
        tell a.Arrival.at (Trace.Job_shed { job = id; depth });
        shed_job id a
      end
      else begin
        Queue.push id queue;
        let depth = depth + 1 in
        if depth > !max_depth then max_depth := depth;
        tell a.Arrival.at (Trace.Job_queued { job = id; depth })
      end;
      incr next
    done
  in

  (* Recycling hygiene: a slot's previous tenant must not leak
     translations to the next one.  With ASID-qualified keys a targeted
     invalidation suffices; with raw keys the hazard only exists when no
     flushing switch can intervene — the slot is still current — and a
     whole-buffer flush is the only tool. *)
  let scrub_slot s =
    if used.(s) then
      if tagged_keys then begin
        let entries = Dtb.invalidate_asid dtb ~asid:s in
        if entries > 0 then begin
          incr evictions;
          tell !clock (Trace.Asid_evicted { asid = s; entries; cold = false })
        end
      end
      else if Dtb.current_asid dtb = s && Dtb.resident_entries dtb > 0 then begin
        let entries = Dtb.resident_entries dtb in
        Dtb.flush dtb;
        incr evictions;
        tell !clock (Trace.Asid_evicted { asid = s; entries; cold = false })
      end
  in

  let free_slot () =
    let rec scan s =
      if s = slots then None else if active.(s) = None then Some s else scan (s + 1)
    in
    scan 0
  in

  let admit () =
    let continue = ref true in
    while !continue do
      match (Queue.is_empty queue, free_slot ()) with
      | false, Some s ->
          let id = Queue.pop queue in
          let a = arr.(id) in
          scrub_slot s;
          let name, encoded = tmpl.(a.Arrival.template) in
          let hook = ref (fun ~dir_addr:_ -> ()) in
          let machine =
            U.prepare_dtb_shared ?timing ?fuel ~layout ?backend
              ~on_translation:(fun ~dir_addr -> !hook ~dir_addr)
              ~dtb encoded
          in
          active.(s) <-
            Some
              {
                t_job = id;
                t_template = a.Arrival.template;
                t_name = name;
                t_encoded = encoded;
                t_machine = machine;
                t_total_dir_steps =
                  U.dir_steps_memoized encoded.Codec.program;
                t_hook = hook;
                t_arrival = a.Arrival.at;
                t_admit = !clock;
                t_slices = 0;
                t_hits = 0;
                t_misses = 0;
                t_evictions = 0;
              };
          used.(s) <- true;
          tell !clock
            (Trace.Job_admitted
               { job = id; asid = s; wait = !clock - a.Arrival.at;
                 depth = Queue.length queue })
      | _ -> continue := false
    done
  in

  (* The cold-ASID economy: while the directory is crowded, invalidate
     the idlest sufficiently-idle slot (largest footprint breaks ties) to
     hand its capacity to the tenants actually translating. *)
  let evict_cold () =
    match economy with
    | None -> ()
    | Some e when not tagged_keys -> ignore e
    | Some e ->
        let tag_capacity = config.Dtb.sets * config.Dtb.assoc in
        let crowded () =
          float_of_int (Dtb.resident_entries dtb)
          >= e.evict_watermark *. float_of_int tag_capacity
        in
        let continue = ref true in
        while !continue && crowded () do
          let now = Dtb.use_clock dtb in
          let best = ref None in
          for s = 0 to slots - 1 do
            let idle = now - Dtb.asid_last_use dtb ~asid:s in
            if idle >= e.evict_min_idle then begin
              let footprint = Dtb.asid_footprint dtb ~asid:s in
              if footprint > 0 then
                match !best with
                | Some (_, bi, bf) when bi > idle || (bi = idle && bf >= footprint)
                  ->
                    ()
                | _ -> best := Some (s, idle, footprint)
            end
          done;
          match !best with
          | None -> continue := false
          | Some (s, _, _) ->
              let entries = Dtb.invalidate_asid dtb ~asid:s in
              incr evictions;
              incr cold_evictions;
              tell !clock (Trace.Asid_evicted { asid = s; entries; cold = true })
        done
  in

  let pick () =
    match scheduler with
    | Scheduler.Round_robin ->
        let rec scan k =
          if k = slots then None
          else
            let i = (!last_index + 1 + k) mod slots in
            if active.(i) <> None then Some i else scan (k + 1)
        in
        scan 0
    | Scheduler.Shortest_remaining ->
        let best = ref None in
        Array.iteri
          (fun i t ->
            match t with
            | None -> ()
            | Some t ->
                let remaining =
                  max 0
                    (t.t_total_dir_steps
                    - (Machine.stats t.t_machine).Machine.interp_count)
                in
                (match !best with
                | Some (_, r) when r <= remaining -> ()
                | _ -> best := Some (i, remaining)))
          active;
        Option.map fst !best
  in

  let retire i (t : tenant) status =
    let stats = Machine.stats t.t_machine in
    let solo = Mix.solo_cycles ?timing ?fuel ~config t.t_encoded in
    let sojourn = !clock - t.t_arrival in
    jobs.(t.t_job) <-
      Some
        {
          j_id = t.t_job;
          j_template = t.t_template;
          j_name = t.t_name;
          j_arrival = t.t_arrival;
          j_admit = t.t_admit;
          j_finish = !clock;
          j_asid = i;
          j_cycles = stats.Machine.cycles;
          j_queue_delay = t.t_admit - t.t_arrival;
          j_sojourn = sojourn;
          j_solo_cycles = solo;
          j_slowdown =
            (if solo = 0 then 1. else float_of_int sojourn /. float_of_int solo);
          j_status = Completed status;
        };
    Machine.recycle t.t_machine;
    active.(i) <- None
  in

  let slice i =
    let t = match active.(i) with Some t -> t | None -> assert false in
    if i <> !last_index then begin
      let from_asid = if !last_index < 0 then None else Some !last_index in
      let before = Dtb.flushes dtb in
      Dtb.switch_to dtb ~asid:i;
      incr switches;
      tell !clock (Trace.Switch { from_asid; to_asid = i });
      if Dtb.flushes dtb > before then tell !clock (Trace.Dtb_flush { asid = i })
    end;
    last_index := i;
    let stats = Machine.stats t.t_machine in
    let c0 = stats.Machine.cycles in
    let h0 = Dtb.hits dtb
    and m0 = Dtb.misses dtb
    and e0 = Dtb.evictions dtb in
    (t.t_hook :=
       fun ~dir_addr ->
         tell
           (!clock + (Machine.stats t.t_machine).Machine.cycles - c0)
           (Trace.Translation { asid = i; dir_addr }));
    let outcome = Machine.run_dir_quantum t.t_machine ~quantum in
    (t.t_hook := fun ~dir_addr:_ -> ());
    clock := !clock + (stats.Machine.cycles - c0);
    t.t_slices <- t.t_slices + 1;
    t.t_hits <- t.t_hits + (Dtb.hits dtb - h0);
    t.t_misses <- t.t_misses + (Dtb.misses dtb - m0);
    t.t_evictions <- t.t_evictions + (Dtb.evictions dtb - e0);
    match outcome with
    | Machine.Yielded -> tell !clock (Trace.Quantum_expiry { asid = i })
    | Machine.Done status ->
        tell !clock
          (Trace.Completion { asid = i; ok = status = Machine.Halted });
        retire i t status
  in

  let running = ref true in
  while !running do
    ingest ();
    admit ();
    evict_cold ();
    match pick () with
    | Some i -> slice i
    | None ->
        (* nothing resident: either jump the clock to the next arrival or
           the stream is exhausted and we are done *)
        if !next < njobs then clock := max !clock arr.(!next).Arrival.at
        else running := false
  done;

  let job_list =
    Array.to_list jobs
    |> List.map (function Some j -> j | None -> assert false)
  in
  let summary =
    summarize ~njobs ~total_cycles:!clock ~max_depth:!max_depth
      ~evictions:!evictions ~cold_evictions:!cold_evictions
      ~switches:!switches
      ~flushes:(Dtb.flushes dtb - flushes0)
      ~hit_ratio:(Dtb.hit_ratio dtb) job_list
  in
  {
    sv_policy = policy;
    sv_scheduler = scheduler;
    sv_quantum = quantum;
    sv_config = config;
    sv_slots = slots;
    sv_jobs = job_list;
    sv_summary = summary;
    sv_trace = trace;
  }
