(** Fixed-width text tables.

    Every bench target and example renders its results through this module so
    that the output of [bench/main.exe] reads like the tables in the paper:
    a title line, a header row, a rule, and right-aligned numeric cells. *)

type align = Left | Right | Center

type t
(** A table under construction.  Rows are kept in insertion order. *)

val create : ?title:string -> columns:(string * align) list -> unit -> t
(** [create ~title ~columns ()] starts a table with one column per
    [(header, alignment)] pair. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  Raises [Invalid_argument] if the number
    of cells differs from the number of columns. *)

val add_rule : t -> unit
(** [add_rule t] appends a horizontal rule row, rendered as dashes. *)

val render : t -> string
(** [render t] lays the table out with every column as wide as its widest
    cell and returns the whole table, newline-terminated. *)

val print : t -> unit
(** [print t] writes [render t] to standard output. *)

val cell_float : ?decimals:int -> float -> string
(** [cell_float ~decimals v] formats [v] with a fixed number of decimals
    (default 2), matching the precision used in the paper's tables. *)

val cell_int : int -> string
(** [cell_int v] formats [v] in decimal. *)

val cell_pct : ?decimals:int -> float -> string
(** [cell_pct v] formats a ratio [v] as a percentage with a [%] suffix. *)

val cell_bytes : int -> string
(** [cell_bytes n] formats a byte count with a unit suffix (B, KiB, MiB). *)
