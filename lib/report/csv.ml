let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if not (needs_quoting s) then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let row fields = String.concat "," (List.map escape_field fields)

let render ~header rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (row header);
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (row r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
