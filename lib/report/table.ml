type align = Left | Right | Center

type row =
  | Cells of string list
  | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title ~columns () =
  let headers = List.map fst columns and aligns = List.map snd columns in
  { title; headers; aligns; rows = [] }

let n_columns t = List.length t.headers

let add_row t cells =
  if List.length cells <> n_columns t then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" (n_columns t)
         (List.length cells));
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let spare = width - n in
    match align with
    | Left -> s ^ String.make spare ' '
    | Right -> String.make spare ' ' ^ s
    | Center ->
        let left = spare / 2 in
        String.make left ' ' ^ s ^ String.make (spare - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  List.iter (function Cells cs -> update cs | Rule -> ()) rows;
  let buf = Buffer.create 256 in
  let line cells =
    let padded =
      List.mapi (fun i (a, c) -> pad a widths.(i) c) (List.combine t.aligns cells)
    in
    Buffer.add_string buf (String.concat "  " padded);
    Buffer.add_char buf '\n'
  in
  let rule () =
    let segs = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
    Buffer.add_string buf (String.concat "  " segs);
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (String.length title) '=');
      Buffer.add_char buf '\n'
  | None -> ());
  line t.headers;
  rule ();
  List.iter (function Cells cs -> line cs | Rule -> rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_int v = string_of_int v
let cell_pct ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (v *. 100.)

let cell_bytes n =
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else Printf.sprintf "%.2f MiB" (float_of_int n /. (1024. *. 1024.))
