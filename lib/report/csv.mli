(** Minimal CSV emission for experiment results.

    Quoting follows RFC 4180: a field is quoted iff it contains a comma,
    a double quote, or a newline; embedded quotes are doubled. *)

val escape_field : string -> string
(** [escape_field s] returns [s] quoted if necessary. *)

val row : string list -> string
(** [row fields] renders one CSV line (no trailing newline). *)

val render : header:string list -> string list list -> string
(** [render ~header rows] renders a header line plus one line per row,
    newline-terminated. *)
