(* Anatomy of a dynamic translation: what the translator emits, and where
   the cycles go on the miss path versus the hit path.

   Run with:  dune exec examples/jit_anatomy.exe *)

module Table = Uhm_report.Table
module Kind = Uhm_encoding.Kind
module SF = Uhm_machine.Short_format
module Machine = Uhm_machine.Machine
module Asm = Uhm_machine.Asm
module Isa = Uhm_dir.Isa
module U = Uhm_core.Uhm
module Dtb = Uhm_core.Dtb

let source =
  {|
begin
  integer i, s;
  s := 0;
  for i := 1 to 500 do s := (s + i * i) mod 10007;
  print s;
end
|}

let () =
  let ast = Uhm_hlr.Check.check_exn (Uhm_hlr.Parser.parse ~name:"anatomy" source) in
  let dir = Uhm_compiler.Pipeline.compile ~fuse:true ast in

  print_endline "DIR program (the static, compact representation):";
  print_string (Uhm_dir.Program.listing dir);

  (* Show what the PSDER translations of the first instructions look like,
     using the same templates the dynamic translator emits at run time. *)
  let b = Asm.create () in
  let layout = Uhm_psder.Layout.default in
  let rt = Uhm_psder.Runtime.build b ~layout in
  let static = Uhm_psder.Static_gen.build ~layout ~rt dir in
  print_endline "\nPSDER translations (what lands in the DTB buffer):";
  let words = static.Uhm_psder.Static_gen.words in
  let addr0 = layout.Uhm_psder.Layout.psder_static_base in
  Array.iteri
    (fun i instr ->
      if i < 8 then begin
        Printf.printf "  %-24s =>" (Isa.to_string instr);
        let start = static.Uhm_psder.Static_gen.addr_of_instr.(i) - addr0 in
        let stop =
          if i + 1 < Array.length static.Uhm_psder.Static_gen.addr_of_instr
          then static.Uhm_psder.Static_gen.addr_of_instr.(i + 1) - addr0
          else Array.length words
        in
        for k = start to stop - 1 do
          Printf.printf "  %s;" (SF.to_string words.(k))
        done;
        print_newline ()
      end)
    dir.Uhm_dir.Program.code;

  (* Now run for real with the DTB and dissect the cycles. *)
  let r = U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Digram dir in
  let s = r.U.machine_stats in
  let cat c = s.Machine.cat_cycles.(Machine.category_index c) in
  let misses = Option.value ~default:0 r.U.dtb_misses in
  Printf.printf "\noutput: %s" r.U.output;
  Printf.printf "\nDTB execution (digram-encoded DIR, %d-bit static image):\n"
    r.U.static_size_bits;
  let t =
    Table.create ~columns:[ ("component", Table.Left); ("value", Table.Right) ] ()
  in
  Table.add_row t [ "DIR instructions executed"; Table.cell_int r.U.dir_steps ];
  Table.add_row t [ "INTERP lookups"; Table.cell_int s.Machine.interp_count ];
  Table.add_row t [ "DTB misses (= translations)"; Table.cell_int misses ];
  Table.add_row t
    [ "hit ratio";
      Table.cell_pct ~decimals:2 (Option.value ~default:0. r.U.dtb_hit_ratio) ];
  Table.add_row t [ "total cycles"; Table.cell_int r.U.cycles ];
  Table.add_row t [ "  decode (d, miss path only)"; Table.cell_int (cat Asm.Decode) ];
  Table.add_row t [ "  generate (g, miss path only)"; Table.cell_int (cat Asm.Translate) ];
  Table.add_row t [ "  semantic routines (x)"; Table.cell_int (cat Asm.Semantic) ];
  Table.add_row t [ "  DIR fetch (miss path only)"; Table.cell_int s.Machine.dir_fetch_cycles ];
  Table.print t;
  Printf.printf
    "\nEach of the %d translations was decoded and generated once, then\n\
     executed ~%d times from the buffer — the binding persisted, which is\n\
     the whole idea of the dynamic translator.\n"
    misses
    (if misses = 0 then 0 else r.U.dir_steps / misses)
