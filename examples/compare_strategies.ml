(* The paper's three machines, head to head (plus the two static extremes).

   Runs a benchmark program under every execution strategy and prints the
   comparison the paper's section 7 analyses:
     - conventional interpreter          (T1)
     - interpreter + instruction cache   (T3)
     - UHM + dynamic translation buffer  (T2, the contribution)
     - static PSDER in level-2 memory
     - fully expanded machine code (DER), fast-store and level-2 resident

   Run with:  dune exec examples/compare_strategies.exe [program-name] *)

module Table = Uhm_report.Table
module Kind = Uhm_encoding.Kind
module U = Uhm_core.Uhm
module Dtb = Uhm_core.Dtb

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fib_rec" in
  let program, description =
    match Uhm_workload.Suite.find name with
    | entry ->
        ( Uhm_workload.Suite.compile ~fuse:true entry,
          entry.Uhm_workload.Suite.description )
    | exception Not_found ->
        let entry = Uhm_ftn.Suite.find name in
        (Uhm_ftn.Suite.compile ~fuse:true entry, entry.Uhm_ftn.Suite.description)
  in
  Printf.printf "program: %s — %s\n\n" name description;
  let strategies =
    [
      ("conventional interpreter (T1)", U.Interp, Kind.Huffman);
      ("interpreter + 4KiB icache (T3)", U.Cached 4096, Kind.Huffman);
      ("UHM with DTB (T2)", U.Dtb_strategy Dtb.paper_config, Kind.Huffman);
      ("static PSDER in level 2", U.Psder_static, Kind.Packed);
      ("DER in the fast store", U.Der U.Der_level1, Kind.Packed);
      ("DER in level 2", U.Der U.Der_level2, Kind.Packed);
      ("DER + 4KiB icache", U.Der (U.Der_level2_cached 4096), Kind.Packed);
    ]
  in
  let t =
    Table.create
      ~columns:
        [ ("machine", Table.Left); ("cycles", Table.Right);
          ("cycles/instr", Table.Right); ("static size", Table.Right);
          ("hit ratio", Table.Right) ]
      ()
  in
  let baseline = ref 0 in
  List.iter
    (fun (label, strategy, kind) ->
      let r = U.run ~strategy ~kind program in
      (match r.U.status with
      | Uhm_machine.Machine.Halted -> ()
      | _ -> failwith (label ^ ": did not halt"));
      if !baseline = 0 then baseline := r.U.cycles;
      let hit =
        match (r.U.dtb_hit_ratio, r.U.icache_hit_ratio) with
        | Some h, _ | None, Some h -> Table.cell_pct ~decimals:2 h
        | None, None -> "-"
      in
      Table.add_row t
        [ label; Table.cell_int r.U.cycles;
          Table.cell_float (U.cycles_per_dir_instruction r);
          Table.cell_bytes ((r.U.static_size_bits + 7) / 8); hit ])
    strategies;
  Table.print t;
  print_endline
    "\nThe DTB keeps the compact Huffman DIR in level-2 memory yet runs\n\
     close to the expanded machine code — exactly the paper's claim that\n\
     dynamic translation meets \"the conflicting requirements of a compact\n\
     representation and low execution time\" simultaneously."
