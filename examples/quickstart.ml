(* Quickstart: source text -> DIR -> the simulated universal host machine.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
begin
  { greatest common divisor, the ALGOL way }
  procedure gcd(a, b);
  begin
    while b <> 0 do
    begin
      integer t;
      t := a mod b;
      a := b;
      b := t;
    end;
    return a;
  end;
  print gcd(1071, 462);
  print gcd(123456, 7890);
end
|}

let () =
  (* 1. Front end: parse and check the high-level representation. *)
  let ast = Uhm_hlr.Check.check_exn (Uhm_hlr.Parser.parse ~name:"quickstart" source) in

  (* 2. Compile to the DIR (directly interpretable representation). *)
  let dir = Uhm_compiler.Pipeline.compile ~fuse:true ast in
  Printf.printf "compiled to %d DIR instructions\n\n"
    (Uhm_dir.Program.size_instructions dir);

  (* 3. Encode it for level-2 memory (Huffman opcodes here). *)
  let encoded = Uhm_encoding.Codec.encode Uhm_encoding.Kind.Huffman dir in
  Printf.printf "huffman encoding: %d bits (%.1f bits/instruction)\n\n"
    encoded.Uhm_encoding.Codec.size_bits
    (Uhm_encoding.Codec.bits_per_instruction encoded);

  (* 4. Run it on the universal host machine with a dynamic translation
        buffer — the paper's contribution. *)
  let result =
    Uhm_core.Uhm.run_encoded
      ~strategy:(Uhm_core.Uhm.Dtb_strategy Uhm_core.Dtb.paper_config)
      encoded
  in
  print_string result.Uhm_core.Uhm.output;
  Printf.printf "\n%d cycles for %d DIR instructions (%.1f cycles/instr)\n"
    result.Uhm_core.Uhm.cycles result.Uhm_core.Uhm.dir_steps
    (Uhm_core.Uhm.cycles_per_dir_instruction result);
  match result.Uhm_core.Uhm.dtb_hit_ratio with
  | Some h -> Printf.printf "DTB hit ratio: %.2f%%\n" (100. *. h)
  | None -> ()
