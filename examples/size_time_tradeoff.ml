(* The two-dimensional space of representations (paper Figure 1), measured
   for one program: semantic level on one axis, degree of encoding on the
   other, with program size and interpretation time at every point.

   Run with:  dune exec examples/size_time_tradeoff.exe [suite-program] *)

module Table = Uhm_report.Table
module Experiment = Uhm_core.Experiment
module Suite = Uhm_workload.Suite

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "collatz" in
  let entry = Suite.find name in
  Printf.printf "program: %s — %s\n" entry.Suite.name entry.Suite.description;
  let points = Experiment.figure1_points ~name (Suite.parse entry) in
  let t =
    Table.create
      ~columns:
        [ ("representation", Table.Left); ("size", Table.Right);
          ("rel. time", Table.Right); ("note", Table.Left) ]
      ()
  in
  let fastest =
    List.fold_left
      (fun acc pt -> min acc pt.Experiment.sp_total_cycles)
      max_int points
  in
  let smallest =
    List.fold_left (fun acc pt -> min acc pt.Experiment.sp_size_bits) max_int
      points
  in
  List.iter
    (fun pt ->
      let note =
        if pt.Experiment.sp_total_cycles = fastest then "fastest"
        else if pt.Experiment.sp_size_bits = smallest then "smallest"
        else ""
      in
      Table.add_row t
        [ pt.Experiment.sp_label;
          Table.cell_bytes ((pt.Experiment.sp_size_bits + 7) / 8);
          Table.cell_float
            (float_of_int pt.Experiment.sp_total_cycles /. float_of_int fastest);
          note ])
    points;
  Table.print t;
  print_endline
    "\nNo single static representation wins both columns — which is why the\n\
     paper pairs a heavily encoded static DIR with a dynamically translated\n\
     working set (compare with: dune exec examples/compare_strategies.exe)."
