(* The universal host's second language: Fortran-S source, through its own
   front end, to the same DIR, encodings and machine as Algol-S.

   Run with:  dune exec examples/fortran_tour.exe *)

module Kind = Uhm_encoding.Kind
module Codec = Uhm_encoding.Codec
module U = Uhm_core.Uhm
module Dtb = Uhm_core.Dtb

let source =
  {|
      PROGRAM PERFECT
C     Print the perfect numbers below 1000, the FORTRAN way.
      INTEGER N
      DO 10 N = 2, 999
      IF (ISIGMA(N) .EQ. N) PRINT N
   10 CONTINUE
      STOP
      END

      FUNCTION ISIGMA(N)
C     Sum of the proper divisors of N.
      INTEGER D
      ISIGMA = 1
      D = 2
   20 IF (D * D .GT. N) GOTO 40
      IF (MOD(N, D) .NE. 0) GOTO 30
      ISIGMA = ISIGMA + D
      IF (D * D .NE. N) ISIGMA = ISIGMA + N / D
   30 D = D + 1
      GOTO 20
   40 RETURN
      END
|}

let () =
  (* front end: parse, check, then print back through the pretty-printer *)
  let ast = Uhm_ftn.Check.check_exn (Uhm_ftn.Parser.parse ~name:"perfect" source) in
  print_endline "reprinted by the Fortran-S pretty-printer:";
  print_string (Uhm_ftn.Pretty.to_string ast);

  (* the reference interpreter is the semantic oracle *)
  let expected = Uhm_ftn.Interp.run_output ast in

  (* compile to the DIR (with superoperator fusion), encode, and run on the
     machine with the dynamic translation buffer *)
  let dir = Uhm_ftn.Codegen.compile_source ~name:"perfect" ~fuse:true source in
  Printf.printf "\ncompiled to %d DIR instructions; digram size %d bits\n"
    (Uhm_dir.Program.size_instructions dir)
    (Codec.encode Kind.Digram dir).Codec.size_bits;
  let r = U.run ~strategy:(U.Dtb_strategy Dtb.paper_config) ~kind:Kind.Digram dir in
  print_string r.U.output;
  assert (String.equal r.U.output expected);
  Printf.printf
    "\n%d DIR instructions in %d cycles (%.1f/instr), DTB hit ratio %.2f%%\n\
     — same machine, same semantic routines, different language.\n"
    r.U.dir_steps r.U.cycles
    (U.cycles_per_dir_instruction r)
    (100. *. Option.value ~default:0. r.U.dtb_hit_ratio)
